//! The bit-sliced filter bank: all languages' Bloom vectors fused so one
//! n-gram tests against **every** language with `k` loads and one AND.
//!
//! # Why
//!
//! In the paper's hardware, one n-gram register fans out to every language's
//! bit-vectors simultaneously: testing `p` languages costs the same cycle as
//! testing one. The naive software transcription
//! ([`crate::ParallelBloomFilter`] per language) inverts that shape — each
//! n-gram walks `p` filters × `k` vectors, a scattered random load (plus a
//! bounds check) per *(language, hash)* pair, `p·k` loads per n-gram.
//!
//! # Layout
//!
//! All language filters in a classifier share one [`H3Family`] (the hardware
//! replicates the hash circuits, not the randomness), so the `k` addresses of
//! an n-gram are the same for every language. The bank exploits that: for
//! each hash function `i` it stores ONE address-indexed array `slices[i]`
//! whose entry at address `a` is a `p`-bit **language mask** — bit `j` set
//! iff language `j`'s vector-`i` bit at `a` is set.
//!
//! Mask entries are stored at the narrowest power-of-two width that holds
//! `p` bits (`u8`/`u16`/`u32`/`u64`), which keeps the hot arrays small — the
//! paper's 8-language configuration packs each mask into one byte, an 8×
//! smaller working set than uniform `u64` words, small enough to stay
//! cache-resident. `p > 64` uses `ceil(p/64)` little-endian `u64` words per
//! mask, so any language count works transparently.
//!
//! A membership test of one n-gram against all `p` languages becomes:
//!
//! 1. compute the `k` addresses once (fused H3 evaluation),
//! 2. load `k` masks — one contiguous load per hash function,
//! 3. AND-reduce them (languages whose every per-hash bit was set survive),
//! 4. scatter-add the surviving mask bits into per-language counters
//!    (`trailing_zeros` loop, one increment per matching language).
//!
//! That is `k` loads + one AND per n-gram instead of `p·k` loads — the same
//! fan-out the paper's datapath gets from wiring.
//!
//! # Invariants
//!
//! * Bit-for-bit equivalent to testing each [`crate::ParallelBloomFilter`]
//!   independently (property-tested for every mask width, any `p`, any
//!   input).
//! * Addresses produced by the shared hash family are `< m` by construction
//!   (H3 output width equals the vector address width), so the hot path
//!   performs no per-language assertions; this is checked once at
//!   construction and with `debug_assert!` in debug builds.

use crate::params::BloomParams;
use crate::simd::Avx2Probe;
use crate::ParallelBloomFilter;
use lc_hash::{H3Family, SimdLevel};

/// Keys per block in [`KeySource::for_each_key_block`] — one AVX2 register
/// of 32-bit keys. Matches `lc_ngram::BLOCK_LANES` (the extractor's block
/// width) by design; the classifier asserts the two agree.
pub const KEY_BLOCK_LANES: usize = 8;

/// A push-style source of query keys — the fused-path analogue of an
/// iterator. `for_each_key` hands every key to `sink` exactly once, in
/// order; the bank monomorphizes its probe loop around the call, so a
/// source that folds bytes through a shift register (n-gram extraction)
/// compiles into **one** loop with the `k` hash evaluations and mask loads
/// — no intermediate key buffer between extraction and probe.
///
/// Every `IntoIterator<Item = u64>` is a `KeySource` (the pre-extracted
/// path); state-machine sources implement the trait directly.
pub trait KeySource {
    /// Push every key into `sink`, in order.
    fn for_each_key(self, sink: impl FnMut(u64));

    /// Push the keys in [`KEY_BLOCK_LANES`]-wide blocks of 32-bit keys
    /// (each key masked by `key_mask`, which the caller guarantees fits
    /// `u32`), with any stragglers delivered singly via
    /// [`KeyBlockSink::key`]. Counts commute, so a source may freely mix
    /// blocks and single keys — the default packs the `for_each_key`
    /// stream; block-native sources (the blocked n-gram extractor)
    /// override it to hand over whole SIMD blocks with no repacking.
    fn for_each_key_block(self, key_mask: u64, sink: &mut impl KeyBlockSink)
    where
        Self: Sized,
    {
        let mut buf = [0u32; KEY_BLOCK_LANES];
        let mut filled = 0usize;
        self.for_each_key(|key| {
            buf[filled] = (key & key_mask) as u32;
            filled += 1;
            if filled == KEY_BLOCK_LANES {
                sink.block(&buf);
                filled = 0;
            }
        });
        for &key in &buf[..filled] {
            sink.key(u64::from(key));
        }
    }
}

/// Receiver for [`KeySource::for_each_key_block`]: whole blocks take the
/// vector path, stragglers (warm-up, chunk joins, tails shorter than a
/// block) take the scalar path. Both must produce identical counts —
/// pinned by the equivalence proptests.
pub trait KeyBlockSink {
    /// Probe a full block of [`KEY_BLOCK_LANES`] pre-masked 32-bit keys.
    fn block(&mut self, keys: &[u32; KEY_BLOCK_LANES]);

    /// Probe one key on the scalar path.
    fn key(&mut self, key: u64);
}

impl<I: IntoIterator<Item = u64>> KeySource for I {
    #[inline]
    fn for_each_key(self, mut sink: impl FnMut(u64)) {
        for key in self {
            sink(key);
        }
    }
}

/// A mask storage element: the bit-sliced arrays hold language masks at the
/// narrowest width that fits `p`.
trait MaskWord: Copy {
    /// Bits per element.
    const BITS: usize;
    /// All-zero element.
    const ZERO: Self;
    /// Set bit `j` (`j < BITS`).
    fn set_bit(&mut self, j: usize);
    /// Bitwise AND.
    fn and(self, other: Self) -> Self;
    /// Widen to u64 for the scatter-add loop.
    fn to_u64(self) -> u64;
}

macro_rules! impl_mask_word {
    ($($t:ty),*) => {$(
        impl MaskWord for $t {
            const BITS: usize = <$t>::BITS as usize;
            const ZERO: Self = 0;

            #[inline]
            fn set_bit(&mut self, j: usize) {
                *self |= 1 << j;
            }

            #[inline]
            fn and(self, other: Self) -> Self {
                self & other
            }

            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
        }
    )*};
}
impl_mask_word!(u8, u16, u32, u64);

/// `SPREAD8[m]` has byte `j` equal to bit `j` of `m`: one table load turns
/// an 8-language match mask into eight 0/1 byte increments, so the hot
/// loop's count update is a single 64-bit add — no per-set-bit branch loop.
/// The `p ≤ 16` bank applies the same table to each mask byte (SPREAD16):
/// two lookups, two adds, sixteen branchless lanes across a packed pair.
pub(crate) static SPREAD8: [u64; 256] = {
    let mut t = [0u64; 256];
    let mut m = 0usize;
    while m < 256 {
        let mut v = 0u64;
        let mut j = 0;
        while j < 8 {
            if m >> j & 1 == 1 {
                v |= 1u64 << (8 * j);
            }
            j += 1;
        }
        t[m] = v;
        m += 1;
    }
    t
};

/// Width-specialized bit-sliced arrays (one per hash function).
#[derive(Clone, Debug)]
pub(crate) enum MaskSlices {
    /// `p <= 8`: one byte per (hash, address) entry.
    W8(Vec<Box<[u8]>>),
    /// `p <= 16`.
    W16(Vec<Box<[u16]>>),
    /// `p <= 32`.
    W32(Vec<Box<[u32]>>),
    /// `p <= 64`, or `p > 64` with `ceil(p/64)` words per mask. Also used
    /// for `k > 8` (beyond the const-generic dispatch table; the paper's
    /// largest k is 6).
    W64(Vec<Box<[u64]>>),
}

/// Bit-sliced multi-language Bloom engine. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct FilterBank {
    params: BloomParams,
    hashes: H3Family,
    /// Number of languages `p`.
    languages: usize,
    /// `ceil(p / 64)`: u64 words per language mask in the widened
    /// ([`Self::match_mask`]) representation.
    words_per_mask: usize,
    slices: MaskSlices,
    /// The AVX2 probe engine, built once at construction when runtime
    /// dispatch lands on AVX2 and the bank shape has a vector fast path;
    /// `None` means every accumulate call runs the scalar loops.
    simd: Option<Avx2Probe>,
}

impl FilterBank {
    /// Transpose per-language [`ParallelBloomFilter`]s into the bit-sliced
    /// layout. The filters remain the canonical per-language representation;
    /// the bank is the derived query-optimized image.
    ///
    /// # Panics
    ///
    /// Panics if `filters` is empty, or the filters disagree on parameters or
    /// hash family (all languages must share one family, exactly as all
    /// hardware classifiers are fed by the same hash circuits).
    pub fn from_filters(filters: &[ParallelBloomFilter]) -> Self {
        assert!(!filters.is_empty(), "need at least one language filter");
        let params = filters[0].params();
        let hashes = filters[0].hashes().clone();
        for f in &filters[1..] {
            assert_eq!(f.params(), params, "filters disagree on Bloom parameters");
            assert_eq!(
                f.hashes(),
                &hashes,
                "filters must share one hash family (same seed) to be banked"
            );
        }
        let p = filters.len();
        let words_per_mask = p.div_ceil(64);
        // Narrow widths only where the const-K dispatch covers them; the
        // runtime-k and multi-word paths stay on u64.
        let slices = if p <= 8 && params.k <= 8 {
            MaskSlices::W8(Self::build_slices::<u8>(filters, params, 1))
        } else if p <= 16 && params.k <= 8 {
            MaskSlices::W16(Self::build_slices::<u16>(filters, params, 1))
        } else if p <= 32 && params.k <= 8 {
            MaskSlices::W32(Self::build_slices::<u32>(filters, params, 1))
        } else {
            MaskSlices::W64(Self::build_slices::<u64>(filters, params, words_per_mask))
        };
        let mut bank = Self {
            params,
            hashes,
            languages: p,
            words_per_mask,
            slices,
            simd: None,
        };
        bank.set_simd_level(SimdLevel::detect());
        bank
    }

    /// Build the `k` bit-sliced arrays at element width `W` (`wpm` elements
    /// per address; > 1 only for the u64 multi-word case).
    fn build_slices<W: MaskWord>(
        filters: &[ParallelBloomFilter],
        params: BloomParams,
        wpm: usize,
    ) -> Vec<Box<[W]>> {
        let m = params.m_bits();
        let mut slices = Vec::with_capacity(params.k);
        for i in 0..params.k {
            let mut slice = vec![W::ZERO; m * wpm].into_boxed_slice();
            for (j, f) in filters.iter().enumerate() {
                let (word_idx, bit) = (j / W::BITS, j % W::BITS);
                // Walk the language's set bits word-by-word instead of
                // testing all m addresses: profiles are sparse.
                for (w, &word) in f.vectors()[i].words().iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let a = w * 64 + word.trailing_zeros() as usize;
                        slice[a * wpm + word_idx].set_bit(bit);
                        word &= word - 1;
                    }
                }
            }
            slices.push(slice);
        }
        slices
    }

    /// Bloom parameters shared by every banked language.
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Number of languages `p`.
    pub fn languages(&self) -> usize {
        self.languages
    }

    /// `u64` words per language mask (`ceil(p / 64)`) in the widened
    /// representation returned by [`Self::match_mask`].
    pub fn words_per_mask(&self) -> usize {
        self.words_per_mask
    }

    /// Storage bits per (hash, address) mask entry (8/16/32 for narrow
    /// banks, `64 × words_per_mask` otherwise).
    pub fn mask_entry_bits(&self) -> usize {
        match &self.slices {
            MaskSlices::W8(_) => 8,
            MaskSlices::W16(_) => 16,
            MaskSlices::W32(_) => 32,
            MaskSlices::W64(_) => 64 * self.words_per_mask,
        }
    }

    /// The shared hash family.
    pub fn hashes(&self) -> &H3Family {
        &self.hashes
    }

    /// The width-specialized probe slices (the SIMD engine re-pads them).
    pub(crate) fn mask_slices(&self) -> &MaskSlices {
        &self.slices
    }

    /// Choose the probe path. `Avx2` builds the vector engine when the CPU
    /// and the bank shape allow it (silently staying scalar otherwise);
    /// `Scalar` drops any engine. Called once at construction with the
    /// process-wide [`SimdLevel::detect`] choice; tests and the
    /// `--force-scalar` plumbing call it explicitly for live A/B.
    pub fn set_simd_level(&mut self, level: SimdLevel) {
        self.simd = match level {
            SimdLevel::Scalar => None,
            SimdLevel::Avx2 => Avx2Probe::build(self),
        };
    }

    /// The probe path dispatch **actually** selected — `Avx2` only when the
    /// vector engine is live, `Scalar` when the CPU, the environment
    /// (`LC_FORCE_SCALAR`) or the bank shape kept the scalar loops.
    pub fn simd_level(&self) -> SimdLevel {
        if self.simd.is_some() {
            SimdLevel::Avx2
        } else {
            SimdLevel::Scalar
        }
    }

    /// Total bank memory in bits (`k × m × mask_entry_bits`).
    pub fn memory_bits(&self) -> usize {
        self.params.k * self.params.m_bits() * self.mask_entry_bits()
    }

    /// Match mask for one key: word `w`, bit `b` set iff language `64w + b`
    /// matches. Convenience wrapper (allocates); hot paths use
    /// [`Self::accumulate_keys`].
    pub fn match_mask(&self, key: u64) -> Vec<u64> {
        match &self.slices {
            MaskSlices::W8(s) => vec![self.mask_one(s, key)],
            MaskSlices::W16(s) => vec![self.mask_one(s, key)],
            MaskSlices::W32(s) => vec![self.mask_one(s, key)],
            MaskSlices::W64(s) => {
                if self.words_per_mask == 1 {
                    vec![self.mask_one(s, key)]
                } else {
                    let mut addrs = vec![0u32; self.params.k];
                    let mut mask = vec![0u64; self.words_per_mask];
                    self.hashes.hash_all_into(key, &mut addrs);
                    Self::and_reduce(s, self.words_per_mask, &addrs, &mut mask);
                    mask
                }
            }
        }
    }

    /// Single-key AND-reduce over single-element masks, widened to u64.
    fn mask_one<W: MaskWord>(&self, slices: &[Box<[W]>], key: u64) -> u64 {
        let mut addrs = vec![0u32; self.params.k];
        self.hashes.hash_all_into(key, &mut addrs);
        let mut mask = slices[0][addrs[0] as usize];
        for (i, &a) in addrs.iter().enumerate().skip(1) {
            mask = mask.and(slices[i][a as usize]);
        }
        mask.to_u64()
    }

    /// Test one key against every language, returning matching indices.
    pub fn matching_languages(&self, key: u64) -> Vec<usize> {
        let mask = self.match_mask(key);
        let mut out = Vec::new();
        for (w, &word) in mask.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                out.push(w * 64 + word.trailing_zeros() as usize);
                word &= word - 1;
            }
        }
        out
    }

    /// Scatter-add one mask word's set bits into the counters: bit `b` of
    /// `mask` increments `counts[bit_base + b]`. The single place the
    /// count-on-match semantics live; every accumulate path inlines this.
    #[inline]
    pub(crate) fn scatter_add(mask: u64, bit_base: usize, counts: &mut [u64]) {
        let mut mask = mask;
        while mask != 0 {
            counts[bit_base + mask.trailing_zeros() as usize] += 1;
            mask &= mask - 1;
        }
    }

    /// Drain a packed 8×8-bit counter word into the wide counters:
    /// byte `j` of `packed` adds to `counts[j]`. Bytes at or above
    /// `counts.len()` are always zero (masks only carry language bits).
    #[inline]
    pub(crate) fn flush_packed8(packed: u64, counts: &mut [u64]) {
        for (j, c) in counts.iter_mut().enumerate() {
            *c += (packed >> (8 * j)) & 0xFF;
        }
    }

    /// Drain the SPREAD16 pair (languages 0–7 in `lo`, 8–15 in `hi`) into
    /// the wide counters.
    #[inline]
    pub(crate) fn flush_packed16(lo: u64, hi: u64, counts: &mut [u64]) {
        for (j, c) in counts.iter_mut().enumerate() {
            let word = if j < 8 { lo } else { hi };
            *c += (word >> (8 * (j % 8))) & 0xFF;
        }
    }

    /// Drain the SPREAD32 quad (languages `8w .. 8w + 8` in `packed[w]`)
    /// into the wide counters — the `p ≤ 32` extension of the packed
    /// byte-counter family.
    #[inline]
    pub(crate) fn flush_packed32(packed: &[u64; 4], counts: &mut [u64]) {
        for (j, c) in counts.iter_mut().enumerate() {
            *c += (packed[j / 8] >> (8 * (j % 8))) & 0xFF;
        }
    }

    /// The classify hot loop: for every key, increment `counts[j]` for each
    /// matching language `j`. Exactly equivalent to testing each language's
    /// filter independently, but `k` loads + one AND-reduce per key.
    /// Convenience wrapper over [`Self::accumulate_source`] for
    /// pre-extracted key streams.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != self.languages()`.
    pub fn accumulate_keys<I: IntoIterator<Item = u64>>(&self, keys: I, counts: &mut [u64]) {
        self.accumulate_source(keys, counts);
    }

    /// The fused probe entry: drain `src` through the bank, incrementing
    /// `counts[j]` for each key matching language `j`. Dispatches **once**
    /// per batch to a loop monomorphized over the mask width
    /// (u8/u16/u32/u64/multi-word) and, for `k ≤ 8`, the compile-time `k` —
    /// the source's per-key state machine (e.g. the n-gram shift register)
    /// inlines into that loop, so extraction and probe fuse into one pass
    /// with no intermediate key buffer.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != self.languages()`.
    pub fn accumulate_source<S: KeySource>(&self, src: S, counts: &mut [u64]) {
        assert_eq!(
            counts.len(),
            self.languages,
            "one counter per banked language"
        );
        if let Some(engine) = &self.simd {
            engine.accumulate(src, counts);
            return;
        }
        match &self.slices {
            MaskSlices::W8(s) => self.dispatch_k_packed8(s, src, counts),
            MaskSlices::W16(s) => self.dispatch_k_packed16(s, src, counts),
            MaskSlices::W32(s) => self.dispatch_k_packed32(s, src, counts),
            MaskSlices::W64(s) => {
                if self.words_per_mask == 1 {
                    self.dispatch_k(s, src, counts);
                } else {
                    self.accumulate_multiword(s, src, counts);
                }
            }
        }
    }

    /// Dispatch once per batch to a loop with `k` fixed at compile time:
    /// the fused hash unrolls and the `k` mask loads issue back-to-back
    /// with no loop-carried control flow. `k > 8` falls back to the
    /// runtime-`k` loop (identical results).
    fn dispatch_k<W: MaskWord, S: KeySource>(
        &self,
        slices: &[Box<[W]>],
        src: S,
        counts: &mut [u64],
    ) {
        match self.params.k {
            1 => self.accumulate_const_k::<1, W, S>(slices, src, counts),
            2 => self.accumulate_const_k::<2, W, S>(slices, src, counts),
            3 => self.accumulate_const_k::<3, W, S>(slices, src, counts),
            4 => self.accumulate_const_k::<4, W, S>(slices, src, counts),
            5 => self.accumulate_const_k::<5, W, S>(slices, src, counts),
            6 => self.accumulate_const_k::<6, W, S>(slices, src, counts),
            7 => self.accumulate_const_k::<7, W, S>(slices, src, counts),
            8 => self.accumulate_const_k::<8, W, S>(slices, src, counts),
            _ => self.accumulate_runtime_k(slices, src, counts),
        }
    }

    /// Dispatch for the `p ≤ 8` (byte-mask) bank: same const-`k` table as
    /// [`Self::dispatch_k`], but the loops accumulate into one packed
    /// 8×8-bit counter word via [`SPREAD8`] instead of a per-set-bit
    /// scatter loop. `k > 8` falls back to the generic runtime-`k` path.
    fn dispatch_k_packed8<S: KeySource>(&self, slices: &[Box<[u8]>], src: S, counts: &mut [u64]) {
        match self.params.k {
            1 => self.accumulate_packed8::<1, S>(slices, src, counts),
            2 => self.accumulate_packed8::<2, S>(slices, src, counts),
            3 => self.accumulate_packed8::<3, S>(slices, src, counts),
            4 => self.accumulate_packed8::<4, S>(slices, src, counts),
            5 => self.accumulate_packed8::<5, S>(slices, src, counts),
            6 => self.accumulate_packed8::<6, S>(slices, src, counts),
            7 => self.accumulate_packed8::<7, S>(slices, src, counts),
            8 => self.accumulate_packed8::<8, S>(slices, src, counts),
            _ => self.accumulate_runtime_k(slices, src, counts),
        }
    }

    /// Dispatch for the `p ≤ 16` (u16-mask) bank: SPREAD16 — the packed
    /// byte-counter trick of [`Self::dispatch_k_packed8`] spread across a
    /// *pair* of packed words, one [`SPREAD8`] lookup per mask byte
    /// (languages 0–7 in the low word, 8–15 in the high word). Same flush
    /// cadence (every 255 keys, before any lane can wrap), same branchless
    /// per-key update. `k > 8` falls back to the generic runtime-`k` path.
    fn dispatch_k_packed16<S: KeySource>(&self, slices: &[Box<[u16]>], src: S, counts: &mut [u64]) {
        match self.params.k {
            1 => self.accumulate_packed16::<1, S>(slices, src, counts),
            2 => self.accumulate_packed16::<2, S>(slices, src, counts),
            3 => self.accumulate_packed16::<3, S>(slices, src, counts),
            4 => self.accumulate_packed16::<4, S>(slices, src, counts),
            5 => self.accumulate_packed16::<5, S>(slices, src, counts),
            6 => self.accumulate_packed16::<6, S>(slices, src, counts),
            7 => self.accumulate_packed16::<7, S>(slices, src, counts),
            8 => self.accumulate_packed16::<8, S>(slices, src, counts),
            _ => self.accumulate_runtime_k(slices, src, counts),
        }
    }

    /// Dispatch for the `p ≤ 32` (u32-mask) bank: SPREAD32 — the packed
    /// byte-counter trick extended to a *quad* of packed words, one
    /// [`SPREAD8`] lookup per mask byte (languages `8w .. 8w + 8` in word
    /// `w`). Same flush cadence as the narrower paths. `k > 8` falls back
    /// to the generic runtime-`k` path.
    fn dispatch_k_packed32<S: KeySource>(&self, slices: &[Box<[u32]>], src: S, counts: &mut [u64]) {
        match self.params.k {
            1 => self.accumulate_packed32::<1, S>(slices, src, counts),
            2 => self.accumulate_packed32::<2, S>(slices, src, counts),
            3 => self.accumulate_packed32::<3, S>(slices, src, counts),
            4 => self.accumulate_packed32::<4, S>(slices, src, counts),
            5 => self.accumulate_packed32::<5, S>(slices, src, counts),
            6 => self.accumulate_packed32::<6, S>(slices, src, counts),
            7 => self.accumulate_packed32::<7, S>(slices, src, counts),
            8 => self.accumulate_packed32::<8, S>(slices, src, counts),
            _ => self.accumulate_runtime_k(slices, src, counts),
        }
    }

    /// Hot loop for u32 masks (`p ≤ 32`) with compile-time `K`: the match
    /// mask's four bytes index [`SPREAD8`] and four 64-bit adds bump all
    /// thirty-two per-language byte counters — branchless per key, no
    /// per-set-bit scatter loop. Each byte lane grows by at most 1 per
    /// key, so the quad drains into the `u64` counters every 255 keys.
    fn accumulate_packed32<const K: usize, S: KeySource>(
        &self,
        slices: &[Box<[u32]>],
        src: S,
        counts: &mut [u64],
    ) {
        let slices: [&[u32]; K] = std::array::from_fn(|i| &*slices[i]);
        let hashes = self.hashes.fused_evaluator_k::<K>();
        let mut packed = [0u64; 4];
        let mut pending = 0u32;
        src.for_each_key(|key| {
            let addrs: [u32; K] = hashes.hash_all_array(key);
            let mut mask = slices[0][addrs[0] as usize];
            for i in 1..K {
                mask &= slices[i][addrs[i] as usize];
            }
            packed[0] = packed[0].wrapping_add(SPREAD8[(mask & 0xFF) as usize]);
            packed[1] = packed[1].wrapping_add(SPREAD8[(mask >> 8 & 0xFF) as usize]);
            packed[2] = packed[2].wrapping_add(SPREAD8[(mask >> 16 & 0xFF) as usize]);
            packed[3] = packed[3].wrapping_add(SPREAD8[(mask >> 24) as usize]);
            pending += 1;
            if pending == 255 {
                Self::flush_packed32(&packed, counts);
                packed = [0; 4];
                pending = 0;
            }
        });
        Self::flush_packed32(&packed, counts);
    }

    /// Hot loop for u16 masks (`p ≤ 16`) with compile-time `K`: the match
    /// mask's two bytes index [`SPREAD8`] and two 64-bit adds bump all
    /// sixteen per-language byte counters — branchless per key, no
    /// per-set-bit scatter loop. Each byte lane grows by at most 1 per
    /// key, so the pair drains into the `u64` counters every 255 keys.
    fn accumulate_packed16<const K: usize, S: KeySource>(
        &self,
        slices: &[Box<[u16]>],
        src: S,
        counts: &mut [u64],
    ) {
        let slices: [&[u16]; K] = std::array::from_fn(|i| &*slices[i]);
        let hashes = self.hashes.fused_evaluator_k::<K>();
        let mut lo = 0u64;
        let mut hi = 0u64;
        let mut pending = 0u32;
        src.for_each_key(|key| {
            let addrs: [u32; K] = hashes.hash_all_array(key);
            let mut mask = slices[0][addrs[0] as usize];
            for i in 1..K {
                mask &= slices[i][addrs[i] as usize];
            }
            lo = lo.wrapping_add(SPREAD8[(mask & 0xFF) as usize]);
            hi = hi.wrapping_add(SPREAD8[(mask >> 8) as usize]);
            pending += 1;
            if pending == 255 {
                Self::flush_packed16(lo, hi, counts);
                lo = 0;
                hi = 0;
                pending = 0;
            }
        });
        Self::flush_packed16(lo, hi, counts);
    }

    /// Hot loop for byte masks (`p ≤ 8`) with compile-time `K`: the match
    /// mask indexes [`SPREAD8`] and one 64-bit add bumps all eight
    /// per-language byte counters at once — branchless per key. Each byte
    /// grows by at most 1 per key, so the packed word is drained into the
    /// `u64` counters every 255 keys, before any byte can wrap.
    fn accumulate_packed8<const K: usize, S: KeySource>(
        &self,
        slices: &[Box<[u8]>],
        src: S,
        counts: &mut [u64],
    ) {
        let slices: [&[u8]; K] = std::array::from_fn(|i| &*slices[i]);
        let hashes = self.hashes.fused_evaluator_k::<K>();
        let mut packed = 0u64;
        let mut pending = 0u32;
        src.for_each_key(|key| {
            let addrs: [u32; K] = hashes.hash_all_array(key);
            let mut mask = slices[0][addrs[0] as usize];
            for i in 1..K {
                mask &= slices[i][addrs[i] as usize];
            }
            packed = packed.wrapping_add(SPREAD8[mask as usize]);
            pending += 1;
            if pending == 255 {
                Self::flush_packed8(packed, counts);
                packed = 0;
                pending = 0;
            }
        });
        Self::flush_packed8(packed, counts);
    }

    /// Hot loop for single-element masks with compile-time `K`.
    fn accumulate_const_k<const K: usize, W: MaskWord, S: KeySource>(
        &self,
        slices: &[Box<[W]>],
        src: S,
        counts: &mut [u64],
    ) {
        // Hoist the Vec<Box<..>> double indirection: K flat slice views,
        // loaded once per batch instead of twice per key.
        let slices: [&[W]; K] = std::array::from_fn(|i| &*slices[i]);
        // Resolve the const-K fused hash view once per batch: no per-key
        // lazy-init or K == k check inside the loop.
        let hashes = self.hashes.fused_evaluator_k::<K>();
        src.for_each_key(|key| {
            let addrs: [u32; K] = hashes.hash_all_array(key);
            let mut mask = slices[0][addrs[0] as usize];
            for i in 1..K {
                mask = mask.and(slices[i][addrs[i] as usize]);
            }
            Self::scatter_add(mask.to_u64(), 0, counts);
        });
    }

    /// Single-element masks with runtime `k` (`k > 8`).
    fn accumulate_runtime_k<W: MaskWord, S: KeySource>(
        &self,
        slices: &[Box<[W]>],
        src: S,
        counts: &mut [u64],
    ) {
        let mut addrs = vec![0u32; self.params.k];
        let hashes = self.hashes.fused_evaluator();
        src.for_each_key(|key| {
            hashes.hash_all_into(key, &mut addrs);
            let mut mask = slices[0][addrs[0] as usize];
            for (i, &a) in addrs.iter().enumerate().skip(1) {
                mask = mask.and(slices[i][a as usize]);
            }
            Self::scatter_add(mask.to_u64(), 0, counts);
        });
    }

    /// Multi-word masks (`p > 64`), runtime `k`.
    fn accumulate_multiword<S: KeySource>(
        &self,
        slices: &[Box<[u64]>],
        src: S,
        counts: &mut [u64],
    ) {
        let wpm = self.words_per_mask;
        let mut addrs = vec![0u32; self.params.k];
        let mut mask = vec![0u64; wpm];
        let hashes = self.hashes.fused_evaluator();
        src.for_each_key(|key| {
            hashes.hash_all_into(key, &mut addrs);
            if Self::and_reduce(slices, wpm, &addrs, &mut mask) {
                for (w, &word) in mask.iter().enumerate() {
                    Self::scatter_add(word, w * 64, counts);
                }
            }
        });
    }

    /// AND-reduce the `k` per-hash multi-word masks at `addrs` into `mask`;
    /// returns whether any language survived.
    #[inline]
    fn and_reduce(slices: &[Box<[u64]>], wpm: usize, addrs: &[u32], mask: &mut [u64]) -> bool {
        debug_assert_eq!(mask.len(), wpm);
        let base = addrs[0] as usize * wpm;
        mask.copy_from_slice(&slices[0][base..base + wpm]);
        let mut alive = mask.iter().any(|&w| w != 0);
        for (i, &addr) in addrs.iter().enumerate().skip(1) {
            if !alive {
                break;
            }
            let base = addr as usize * wpm;
            alive = false;
            for (m, &s) in mask.iter_mut().zip(&slices[i][base..base + wpm]) {
                *m &= s;
                alive |= *m != 0;
            }
        }
        alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BloomParams;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Build `p` filters over a shared hash family, each programmed with its
    /// own random keys, plus the bank transposed from them.
    fn bank_fixture(
        p: usize,
        params: BloomParams,
        keys_per_lang: usize,
        seed: u64,
    ) -> (Vec<ParallelBloomFilter>, FilterBank) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let filters: Vec<ParallelBloomFilter> = (0..p)
            .map(|_| {
                let mut f = ParallelBloomFilter::new(params, 20, seed);
                f.program_all((0..keys_per_lang).map(|_| rng.gen::<u64>() & 0xF_FFFF));
                f
            })
            .collect();
        let bank = FilterBank::from_filters(&filters);
        (filters, bank)
    }

    fn naive_counts(filters: &[ParallelBloomFilter], keys: &[u64]) -> Vec<u64> {
        let k = filters[0].params().k;
        let mut addrs = vec![0u32; k];
        let mut counts = vec![0u64; filters.len()];
        for &key in keys {
            filters[0].addresses_into(key, &mut addrs);
            for (c, f) in counts.iter_mut().zip(filters) {
                if f.test_with_addresses(&addrs) {
                    *c += 1;
                }
            }
        }
        counts
    }

    #[test]
    fn shape_accessors() {
        let (_, bank) = bank_fixture(8, BloomParams::PAPER_CONSERVATIVE, 100, 1);
        assert_eq!(bank.languages(), 8);
        assert_eq!(bank.words_per_mask(), 1);
        assert_eq!(bank.params(), BloomParams::PAPER_CONSERVATIVE);
        // 8 languages pack into one byte per (hash, address) entry.
        assert_eq!(bank.mask_entry_bits(), 8);
        assert_eq!(bank.memory_bits(), 4 * 16384 * 8);

        // Each width boundary picks the narrowest fitting storage.
        let cases = [(1, 8), (9, 16), (16, 16), (17, 32), (33, 64), (64, 64)];
        for (p, bits) in cases {
            let (_, b) = bank_fixture(p, BloomParams::from_kbits(4, 2), 5, 2);
            assert_eq!(b.mask_entry_bits(), bits, "p = {p}");
        }

        let (_, wide) = bank_fixture(65, BloomParams::from_kbits(4, 2), 10, 2);
        assert_eq!(wide.words_per_mask(), 2);
        assert_eq!(wide.mask_entry_bits(), 128);
    }

    #[test]
    fn empty_bank_matches_nothing() {
        let filters = vec![ParallelBloomFilter::new(BloomParams::from_kbits(4, 3), 20, 5); 4];
        let bank = FilterBank::from_filters(&filters);
        for key in 0..1000u64 {
            assert!(bank.matching_languages(key).is_empty());
        }
    }

    #[test]
    fn programmed_keys_match_their_language() {
        let params = BloomParams::PAPER_CONSERVATIVE;
        let mut filters: Vec<ParallelBloomFilter> = (0..5)
            .map(|_| ParallelBloomFilter::new(params, 20, 9))
            .collect();
        for (j, f) in filters.iter_mut().enumerate() {
            f.program_all((0..200u64).map(|i| (i * 5 + j as u64 * 7919) & 0xF_FFFF));
        }
        let bank = FilterBank::from_filters(&filters);
        for (j, f) in filters.iter().enumerate() {
            for i in 0..200u64 {
                let key = (i * 5 + j as u64 * 7919) & 0xF_FFFF;
                assert!(f.test(key));
                assert!(
                    bank.matching_languages(key).contains(&j),
                    "bank lost language {j} for key {key:#x}"
                );
            }
        }
    }

    #[test]
    fn packed8_flush_boundary_is_exact() {
        // The byte-mask path drains its packed counters every 255 keys;
        // key streams crossing that boundary (and hitting it exactly) must
        // still equal the naive per-language walk.
        let params = BloomParams::new(4, 10);
        let (filters, bank) = bank_fixture(8, params, 400, 7);
        let mut rng = SmallRng::seed_from_u64(99);
        for n in [254usize, 255, 256, 510, 511, 1021] {
            let keys: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() & 0xF_FFFF).collect();
            let mut banked = vec![0u64; 8];
            bank.accumulate_keys(keys.iter().copied(), &mut banked);
            assert_eq!(banked, naive_counts(&filters, &keys), "n = {n}");
        }
    }

    #[test]
    fn packed16_flush_boundary_is_exact() {
        // The u16-mask path (SPREAD16) drains its packed counter pair
        // every 255 keys; key streams crossing that boundary (and hitting
        // it exactly) must still equal the naive per-language walk — for
        // language counts on both sides of the byte split (p ≤ 8 uses the
        // low word only, p > 8 both).
        let params = BloomParams::new(4, 10);
        for p in [9usize, 12, 16] {
            let (filters, bank) = bank_fixture(p, params, 400, 11);
            assert_eq!(bank.mask_entry_bits(), 16, "p = {p} must take the u16 bank");
            let mut rng = SmallRng::seed_from_u64(101);
            for n in [254usize, 255, 256, 510, 511, 1021] {
                let keys: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() & 0xF_FFFF).collect();
                let mut banked = vec![0u64; p];
                bank.accumulate_keys(keys.iter().copied(), &mut banked);
                assert_eq!(banked, naive_counts(&filters, &keys), "p = {p}, n = {n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "share one hash family")]
    fn mismatched_seeds_rejected() {
        let a = ParallelBloomFilter::new(BloomParams::from_kbits(4, 2), 20, 1);
        let b = ParallelBloomFilter::new(BloomParams::from_kbits(4, 2), 20, 2);
        let _ = FilterBank::from_filters(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "disagree on Bloom parameters")]
    fn mismatched_params_rejected() {
        // Same seed stream, different vector sizes.
        let a = ParallelBloomFilter::new(BloomParams::from_kbits(4, 2), 20, 1);
        let b = ParallelBloomFilter::new(BloomParams::from_kbits(8, 2), 20, 1);
        let _ = FilterBank::from_filters(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "at least one language")]
    fn empty_filter_list_rejected() {
        let _ = FilterBank::from_filters(&[]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Banked accumulation must equal the naive per-language loop for
        /// any p — every mask width (u8/u16/u32/u64) and the multi-word
        /// boundary (p > 64) — any key set, and any query set.
        #[test]
        fn banked_counts_equal_naive(
            p in prop_p(), seed in any::<u64>(),
            queries in proptest::collection::vec(any::<u64>(), 0..200),
        ) {
            // Small vectors (m = 256) so collisions and partial matches are
            // common — the interesting regime for equivalence.
            let params = BloomParams::new(3, 8);
            let (filters, bank) = bank_fixture(p, params, 60, seed);
            let mut banked = vec![0u64; p];
            bank.accumulate_keys(queries.iter().copied(), &mut banked);
            prop_assert_eq!(banked, naive_counts(&filters, &queries));
        }

        /// A push-style KeySource (the fused extraction shape) accumulates
        /// identically to the pre-extracted iterator path for every mask
        /// width — the probe loop must not care where keys come from.
        #[test]
        fn source_and_iterator_paths_agree(
            p in prop_p(), seed in any::<u64>(),
            queries in proptest::collection::vec(any::<u64>(), 0..200),
        ) {
            struct Pushed<'a>(&'a [u64]);
            impl KeySource for Pushed<'_> {
                fn for_each_key(self, mut sink: impl FnMut(u64)) {
                    for &k in self.0 {
                        sink(k);
                    }
                }
            }
            let params = BloomParams::new(3, 8);
            let (_, bank) = bank_fixture(p, params, 60, seed);
            let mut via_iter = vec![0u64; p];
            bank.accumulate_keys(queries.iter().copied(), &mut via_iter);
            let mut via_source = vec![0u64; p];
            bank.accumulate_source(Pushed(&queries), &mut via_source);
            prop_assert_eq!(via_iter, via_source);
        }

        /// match_mask agrees with per-language test_with_addresses bit by bit.
        #[test]
        fn match_mask_is_exact(p in prop_p(), seed in any::<u64>(), key in any::<u64>()) {
            let params = BloomParams::new(2, 8);
            let (filters, bank) = bank_fixture(p, params, 80, seed);
            let mask = bank.match_mask(key);
            let mut addrs = vec![0u32; params.k];
            filters[0].addresses_into(key, &mut addrs);
            for (j, f) in filters.iter().enumerate() {
                let expect = f.test_with_addresses(&addrs);
                let got = mask[j / 64] >> (j % 64) & 1 == 1;
                prop_assert_eq!(got, expect, "language {} of {}", j, p);
            }
        }
    }

    /// Language counts that exercise every mask representation: u8 (1, 8),
    /// u16 (12), u32 (20), single-word u64 (33, 64), and multi-word
    /// (65..=100).
    fn prop_p() -> impl Strategy<Value = usize> {
        PChoices
    }

    #[derive(Clone, Copy, Debug)]
    struct PChoices;

    impl Strategy for PChoices {
        type Value = usize;

        fn sample(&self, rng: &mut proptest::TestRng) -> usize {
            match rng.next_u64() % 7 {
                0 => 1,
                1 => 8,
                2 => 12,
                3 => 20,
                4 => 33,
                5 => 64,
                _ => 65 + (rng.next_u64() % 36) as usize, // 65..=100
            }
        }
    }
}
