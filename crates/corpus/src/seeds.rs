//! Embedded seed text per language.
//!
//! Each seed is a few paragraphs of authentic-orthography text in the
//! JRC-Acquis register (EU legal boilerplate) plus a rights-declaration
//! passage and some general prose. The seeds are the training material for
//! the per-language Markov chains in [`crate::markov`]; they only need to
//! carry each language's characteristic character-transition statistics, not
//! to be large. Text is stored as UTF-8 and transliterated/encoded to
//! ISO-8859-1 downstream ([`crate::translit`]).

use crate::language::Language;

/// Seed text for a language.
pub fn seed_text(lang: Language) -> &'static str {
    match lang {
        Language::English => EN,
        Language::French => FR,
        Language::Spanish => ES,
        Language::Portuguese => PT,
        Language::Danish => DA,
        Language::Swedish => SV,
        Language::Finnish => FI,
        Language::Estonian => ET,
        Language::Czech => CS,
        Language::Slovak => SK,
        Language::German => DE,
        Language::Dutch => NL,
        Language::Italian => IT,
        Language::Romanian => RO,
        Language::Polish => PL,
        Language::Hungarian => HU,
        Language::Lithuanian => LT,
        Language::Slovenian => SL,
        Language::Croatian => HR,
        Language::Catalan => CA,
    }
}

const EN: &str = "\
All human beings are born free and equal in dignity and rights. They are endowed with reason \
and conscience and should act towards one another in a spirit of brotherhood. Everyone is \
entitled to all the rights and freedoms set forth in this declaration, without distinction of \
any kind, such as race, colour, sex, language, religion, political or other opinion, national \
or social origin, property, birth or other status. \
Having regard to the treaty establishing the European Community, the Council of the European \
Union has adopted this regulation. This regulation shall enter into force on the twentieth day \
following that of its publication in the official journal of the European Communities. This \
regulation shall be binding in its entirety and directly applicable in all member states. The \
committee shall deliver its opinion on the draft measures within a time limit which the \
chairman may lay down according to the urgency of the matter. Whereas the measures provided \
for in this decision are in accordance with the opinion of the standing committee, the \
commission has examined the application and considers that the conditions laid down in the \
annex are satisfied. Member states shall take all necessary measures to ensure that the \
provisions of this directive are applied to products placed on the market. The government of \
the United Kingdom informed the commission that further information would be made available \
before the end of the year. During the transitional period the customs duties applicable to \
imports of the products listed in the first paragraph shall be reduced in equal steps. Where a \
member state considers that an adjustment is necessary it shall inform the other member states \
and the commission, giving the reasons for the proposed change and the expected effects on \
trade between the countries concerned.";

const FR: &str = "\
Tous les êtres humains naissent libres et égaux en dignité et en droits. Ils sont doués de \
raison et de conscience et doivent agir les uns envers les autres dans un esprit de \
fraternité. Chacun peut se prévaloir de tous les droits et de toutes les libertés proclamés \
dans la présente déclaration, sans distinction aucune, notamment de race, de couleur, de sexe, \
de langue, de religion, d'opinion politique ou de toute autre opinion, d'origine nationale ou \
sociale, de fortune, de naissance ou de toute autre situation. \
Vu le traité instituant la Communauté européenne, le Conseil de l'Union européenne a arrêté le \
présent règlement. Le présent règlement entre en vigueur le vingtième jour suivant celui de sa \
publication au journal officiel des Communautés européennes. Le présent règlement est \
obligatoire dans tous ses éléments et directement applicable dans tout état membre. Le comité \
émet son avis sur le projet de mesures dans un délai que le président peut fixer en fonction \
de l'urgence de la question. Considérant que les mesures prévues à la présente décision sont \
conformes à l'avis du comité permanent, la commission a examiné la demande et considère que \
les conditions fixées à l'annexe sont remplies. Les états membres prennent toutes les mesures \
nécessaires pour que les dispositions de la présente directive soient appliquées aux produits \
mis sur le marché. Pendant la période transitoire, les droits de douane applicables aux \
importations des produits visés au premier alinéa sont réduits par étapes égales. Lorsqu'un \
état membre estime qu'un ajustement est nécessaire, il en informe les autres états membres et \
la commission en indiquant les raisons de la modification proposée.";

const ES: &str = "\
Todos los seres humanos nacen libres e iguales en dignidad y derechos y, dotados como están de \
razón y conciencia, deben comportarse fraternalmente los unos con los otros. Toda persona \
tiene todos los derechos y libertades proclamados en esta declaración, sin distinción alguna \
de raza, color, sexo, idioma, religión, opinión política o de cualquier otra índole, origen \
nacional o social, posición económica, nacimiento o cualquier otra condición. \
Visto el tratado constitutivo de la Comunidad Europea, el Consejo de la Unión Europea ha \
adoptado el presente reglamento. El presente reglamento entrará en vigor el vigésimo día \
siguiente al de su publicación en el diario oficial de las Comunidades Europeas. El presente \
reglamento será obligatorio en todos sus elementos y directamente aplicable en cada estado \
miembro. El comité emitirá su dictamen sobre el proyecto de medidas en un plazo que el \
presidente podrá fijar en función de la urgencia de la cuestión. Considerando que las medidas \
previstas en la presente decisión se ajustan al dictamen del comité permanente, la comisión ha \
examinado la solicitud y considera que se cumplen las condiciones establecidas en el anexo. \
Los estados miembros adoptarán todas las medidas necesarias para garantizar que las \
disposiciones de la presente directiva se apliquen a los productos comercializados. Durante el \
período transitorio, los derechos de aduana aplicables a las importaciones de los productos \
mencionados en el primer párrafo se reducirán en etapas iguales. Cuando un estado miembro \
considere que es necesario un ajuste, informará de ello a los demás estados miembros y a la \
comisión, indicando las razones de la modificación propuesta.";

const PT: &str = "\
Todos os seres humanos nascem livres e iguais em dignidade e em direitos. Dotados de razão e \
de consciência, devem agir uns para com os outros em espírito de fraternidade. Todos os seres \
humanos podem invocar os direitos e as liberdades proclamados na presente declaração, sem \
distinção alguma, nomeadamente de raça, de cor, de sexo, de língua, de religião, de opinião \
política ou outra, de origem nacional ou social, de fortuna, de nascimento ou de qualquer \
outra situação. \
Tendo em conta o tratado que institui a Comunidade Europeia, o Conselho da União Europeia \
adoptou o presente regulamento. O presente regulamento entra em vigor no vigésimo dia seguinte \
ao da sua publicação no jornal oficial das Comunidades Europeias. O presente regulamento é \
obrigatório em todos os seus elementos e directamente aplicável em todos os estados membros. \
O comité emitirá o seu parecer sobre o projecto de medidas num prazo que o presidente pode \
fixar em função da urgência da questão. Considerando que as medidas previstas na presente \
decisão estão em conformidade com o parecer do comité permanente, a comissão examinou o pedido \
e considera que as condições estabelecidas no anexo se encontram preenchidas. Os estados \
membros tomarão todas as medidas necessárias para assegurar que as disposições da presente \
directiva sejam aplicadas aos produtos colocados no mercado. Durante o período transitório, os \
direitos aduaneiros aplicáveis às importações dos produtos referidos no primeiro parágrafo \
serão reduzidos em fases iguais. Quando um estado membro considerar que é necessário um \
ajustamento, informará desse facto os outros estados membros e a comissão, indicando as razões \
da alteração proposta.";

const DA: &str = "\
Alle mennesker er født frie og lige i værdighed og rettigheder. De er udstyret med fornuft og \
samvittighed, og de bør handle mod hverandre i en broderskabets ånd. Enhver har krav på alle \
de rettigheder og friheder, som nævnes i denne erklæring, uden forskelsbehandling af nogen \
art, for eksempel på grund af race, farve, køn, sprog, religion, politisk eller anden \
anskuelse, national eller social oprindelse, formueforhold, fødsel eller anden samfundsmæssig \
stilling. \
Under henvisning til traktaten om oprettelse af Det Europæiske Fællesskab har Rådet for Den \
Europæiske Union udstedt denne forordning. Denne forordning træder i kraft på tyvendedagen \
efter offentliggørelsen i De Europæiske Fællesskabers tidende. Denne forordning er bindende i \
alle enkeltheder og gælder umiddelbart i hver medlemsstat. Udvalget afgiver udtalelse om \
udkastet til foranstaltninger inden for en frist, som formanden kan fastsætte under hensyn til, \
hvor meget sagen haster. Da de i denne beslutning fastsatte foranstaltninger er i \
overensstemmelse med udtalelsen fra det stående udvalg, har kommissionen gennemgået \
ansøgningen og finder, at betingelserne i bilaget er opfyldt. Medlemsstaterne træffer alle \
nødvendige foranstaltninger for at sikre, at bestemmelserne i dette direktiv anvendes på varer, \
der bringes i omsætning. I overgangsperioden nedsættes tolden ved indførsel af de varer, der \
er nævnt i første afsnit, i lige store etaper. Når en medlemsstat finder, at en tilpasning er \
nødvendig, underretter den de øvrige medlemsstater og kommissionen herom med angivelse af \
grundene til den foreslåede ændring.";

const SV: &str = "\
Alla människor är födda fria och lika i värde och rättigheter. De är utrustade med förnuft och \
samvete och bör handla gentemot varandra i en anda av broderskap. Var och en är berättigad \
till alla de fri- och rättigheter som uttalas i denna förklaring utan åtskillnad av något slag, \
såsom ras, hudfärg, kön, språk, religion, politisk eller annan uppfattning, nationellt eller \
socialt ursprung, egendom, börd eller ställning i övrigt. \
Med beaktande av fördraget om upprättandet av Europeiska gemenskapen har Europeiska unionens \
råd antagit denna förordning. Denna förordning träder i kraft den tjugonde dagen efter det att \
den har offentliggjorts i Europeiska gemenskapernas officiella tidning. Denna förordning är \
till alla delar bindande och direkt tillämplig i alla medlemsstater. Kommittén skall yttra sig \
över utkastet till åtgärder inom den tid som ordföranden bestämmer med hänsyn till hur \
brådskande frågan är. Eftersom de åtgärder som föreskrivs i detta beslut är förenliga med \
yttrandet från den ständiga kommittén har kommissionen granskat ansökan och anser att \
villkoren i bilagan är uppfyllda. Medlemsstaterna skall vidta alla nödvändiga åtgärder för att \
säkerställa att bestämmelserna i detta direktiv tillämpas på produkter som släpps ut på \
marknaden. Under övergångsperioden skall tullarna vid import av de produkter som anges i \
första stycket sänkas i lika stora steg. Om en medlemsstat anser att en anpassning är \
nödvändig skall den underrätta de övriga medlemsstaterna och kommissionen om detta och ange \
skälen för den föreslagna ändringen.";

const FI: &str = "\
Kaikki ihmiset syntyvät vapaina ja tasavertaisina arvoltaan ja oikeuksiltaan. Heille on \
annettu järki ja omatunto, ja heidän on toimittava toisiaan kohtaan veljeyden hengessä. \
Jokainen on oikeutettu kaikkiin tässä julistuksessa esitettyihin oikeuksiin ja vapauksiin \
ilman minkäänlaista rotuun, väriin, sukupuoleen, kieleen, uskontoon, poliittiseen tai muuhun \
mielipiteeseen, kansalliseen tai yhteiskunnalliseen alkuperään, omaisuuteen, syntyperään tai \
muuhun tekijään perustuvaa erotusta. \
Ottaen huomioon Euroopan yhteisön perustamissopimuksen Euroopan unionin neuvosto on antanut \
tämän asetuksen. Tämä asetus tulee voimaan kahdentenakymmenentenä päivänä sen jälkeen, kun se \
on julkaistu Euroopan yhteisöjen virallisessa lehdessä. Tämä asetus on kaikilta osiltaan \
velvoittava, ja sitä sovelletaan sellaisenaan kaikissa jäsenvaltioissa. Komitea antaa \
lausuntonsa toimenpideluonnoksesta määräajassa, jonka puheenjohtaja voi asettaa asian \
kiireellisyyden mukaan. Koska tässä päätöksessä säädetyt toimenpiteet ovat pysyvän komitean \
lausunnon mukaisia, komissio on tutkinut hakemuksen ja katsoo, että liitteessä asetetut \
edellytykset täyttyvät. Jäsenvaltioiden on toteutettava kaikki tarvittavat toimenpiteet sen \
varmistamiseksi, että tämän direktiivin säännöksiä sovelletaan markkinoille saatettuihin \
tuotteisiin. Siirtymäkauden aikana ensimmäisessä kohdassa tarkoitettujen tuotteiden tuontiin \
sovellettavia tulleja alennetaan yhtä suurin vaihein. Jos jäsenvaltio katsoo, että mukautus on \
tarpeen, sen on ilmoitettava asiasta muille jäsenvaltioille ja komissiolle sekä esitettävä \
ehdotetun muutoksen perustelut.";

const ET: &str = "\
Kõik inimesed sünnivad vabadena ja võrdsetena oma väärikuselt ja õigustelt. Neile on antud \
mõistus ja südametunnistus ja nende suhtumist üksteisesse peab kandma vendluse vaim. Igal \
inimesel peavad olema kõik käesoleva deklaratsiooniga välja kuulutatud õigused ja vabadused, \
olenemata rassist, nahavärvusest, soost, keelest, usulistest, poliitilistest või muudest \
veendumustest, rahvuslikust või sotsiaalsest päritolust, varanduslikust, seisuslikust või muust \
seisundist. \
Võttes arvesse Euroopa Ühenduse asutamislepingut on Euroopa Liidu nõukogu vastu võtnud \
käesoleva määruse. Käesolev määrus jõustub kahekümnendal päeval pärast selle avaldamist \
Euroopa Ühenduste teatajas. Käesolev määrus on tervikuna siduv ja vahetult kohaldatav kõikides \
liikmesriikides. Komitee esitab oma arvamuse meetmete eelnõu kohta tähtaja jooksul, mille \
eesistuja võib määrata lähtuvalt küsimuse kiireloomulisusest. Kuna käesolevas otsuses \
sätestatud meetmed on kooskõlas alalise komitee arvamusega, on komisjon taotluse läbi vaadanud \
ja leiab, et lisas sätestatud tingimused on täidetud. Liikmesriigid võtavad kõik vajalikud \
meetmed tagamaks, et käesoleva direktiivi sätteid kohaldatakse turule viidud toodete suhtes. \
Üleminekuperioodi jooksul vähendatakse esimeses lõigus nimetatud toodete impordi suhtes \
kohaldatavaid tollimakse võrdsete sammudena. Kui liikmesriik leiab, et kohandamine on vajalik, \
teatab ta sellest teistele liikmesriikidele ja komisjonile ning esitab kavandatava muudatuse \
põhjused.";

const CS: &str = "\
Všichni lidé rodí se svobodní a sobě rovní co do důstojnosti a práv. Jsou nadáni rozumem a \
svědomím a mají spolu jednat v duchu bratrství. Každý má všechna práva a všechny svobody, \
stanovené touto deklarací, bez jakéhokoli rozlišování, zejména podle rasy, barvy, pohlaví, \
jazyka, náboženství, politického nebo jiného smýšlení, národnostního nebo sociálního původu, \
majetku, rodu nebo jiného postavení. \
S ohledem na smlouvu o založení Evropského společenství přijala Rada Evropské unie toto \
nařízení. Toto nařízení vstupuje v platnost dvacátým dnem po vyhlášení v úředním věstníku \
Evropských společenství. Toto nařízení je závazné v celém rozsahu a přímo použitelné ve všech \
členských státech. Výbor zaujme stanovisko k návrhu opatření ve lhůtě, kterou může předseda \
stanovit podle naléhavosti věci. Vzhledem k tomu, že opatření stanovená tímto rozhodnutím jsou \
v souladu se stanoviskem stálého výboru, komise přezkoumala žádost a má za to, že podmínky \
stanovené v příloze jsou splněny. Členské státy přijmou veškerá nezbytná opatření, aby \
zajistily, že ustanovení této směrnice budou uplatňována na výrobky uváděné na trh. Během \
přechodného období se cla použitelná na dovoz výrobků uvedených v prvním pododstavci snižují \
ve stejných etapách. Pokud členský stát usoudí, že je nutná úprava, uvědomí o tom ostatní \
členské státy a komisi a uvede důvody navrhované změny i očekávané účinky na obchod mezi \
dotčenými zeměmi.";

const SK: &str = "\
Všetci ľudia sa rodia slobodní a sebe rovní, čo sa týka ich dôstojnosti a práv. Sú obdarení \
rozumom a majú navzájom jednať v bratskom duchu. Každý má všetky práva a všetky slobody, \
vyhlásené v tejto deklarácii, bez hocijakého rozlišovania najmä podľa rasy, farby, pohlavia, \
jazyka, náboženstva, politického alebo iného zmýšľania, národnostného alebo sociálneho pôvodu, \
majetku, rodu alebo iného postavenia. \
So zreteľom na zmluvu o založení Európskeho spoločenstva prijala Rada Európskej únie toto \
nariadenie. Toto nariadenie nadobúda účinnosť dvadsiatym dňom po jeho uverejnení v úradnom \
vestníku Európskych spoločenstiev. Toto nariadenie je záväzné v celom rozsahu a priamo \
uplatniteľné vo všetkých členských štátoch. Výbor zaujme stanovisko k návrhu opatrení v \
lehote, ktorú môže predseda určiť podľa naliehavosti veci. Keďže opatrenia ustanovené v tomto \
rozhodnutí sú v súlade so stanoviskom stáleho výboru, komisia preskúmala žiadosť a domnieva \
sa, že podmienky stanovené v prílohe sú splnené. Členské štáty prijmú všetky potrebné \
opatrenia, aby zabezpečili, že ustanovenia tejto smernice sa budú uplatňovať na výrobky \
uvádzané na trh. Počas prechodného obdobia sa clá uplatniteľné na dovoz výrobkov uvedených v \
prvom pododseku znižujú v rovnakých etapách. Ak členský štát usúdi, že je potrebná úprava, \
oznámi to ostatným členským štátom a komisii a uvedie dôvody navrhovanej zmeny ako aj \
očakávané účinky na obchod medzi dotknutými krajinami.";

const DE: &str = "\
Alle Menschen sind frei und gleich an Würde und Rechten geboren. Sie sind mit Vernunft und \
Gewissen begabt und sollen einander im Geiste der Brüderlichkeit begegnen. Jeder hat Anspruch \
auf die in dieser Erklärung verkündeten Rechte und Freiheiten ohne irgendeinen Unterschied, \
etwa nach Rasse, Hautfarbe, Geschlecht, Sprache, Religion, politischer oder sonstiger \
Überzeugung, nationaler oder sozialer Herkunft, Vermögen, Geburt oder sonstigem Stand. \
Gestützt auf den Vertrag zur Gründung der Europäischen Gemeinschaft hat der Rat der \
Europäischen Union diese Verordnung erlassen. Diese Verordnung tritt am zwanzigsten Tag nach \
ihrer Veröffentlichung im Amtsblatt der Europäischen Gemeinschaften in Kraft. Diese Verordnung \
ist in allen ihren Teilen verbindlich und gilt unmittelbar in jedem Mitgliedstaat. Der \
Ausschuss gibt seine Stellungnahme zu dem Entwurf der Maßnahmen innerhalb einer Frist ab, die \
der Vorsitzende unter Berücksichtigung der Dringlichkeit der Angelegenheit festsetzen kann. Da \
die in dieser Entscheidung vorgesehenen Maßnahmen mit der Stellungnahme des ständigen \
Ausschusses in Einklang stehen, hat die Kommission den Antrag geprüft und ist der Auffassung, \
dass die im Anhang festgelegten Bedingungen erfüllt sind. Die Mitgliedstaaten treffen alle \
erforderlichen Maßnahmen, um sicherzustellen, dass die Bestimmungen dieser Richtlinie auf die \
in den Verkehr gebrachten Erzeugnisse angewandt werden. Während der Übergangszeit werden die \
Zölle auf die Einfuhren der im ersten Absatz genannten Erzeugnisse in gleichen Stufen gesenkt. \
Hält ein Mitgliedstaat eine Anpassung für erforderlich, so unterrichtet er die übrigen \
Mitgliedstaaten und die Kommission und gibt die Gründe für die vorgeschlagene Änderung an.";

const NL: &str = "\
Alle mensen worden vrij en gelijk in waardigheid en rechten geboren. Zij zijn begiftigd met \
verstand en geweten, en behoren zich jegens elkander in een geest van broederschap te \
gedragen. Een ieder heeft aanspraak op alle rechten en vrijheden, in deze verklaring opgesomd, \
zonder enig onderscheid van welke aard ook, zoals ras, kleur, geslacht, taal, godsdienst, \
politieke of andere overtuiging, nationale of maatschappelijke afkomst, eigendom, geboorte of \
andere status. \
Gelet op het verdrag tot oprichting van de Europese Gemeenschap heeft de Raad van de Europese \
Unie deze verordening vastgesteld. Deze verordening treedt in werking op de twintigste dag \
volgende op die van haar bekendmaking in het publicatieblad van de Europese Gemeenschappen. \
Deze verordening is verbindend in al haar onderdelen en is rechtstreeks toepasselijk in elke \
lidstaat. Het comité brengt advies uit over het ontwerp van maatregelen binnen een termijn die \
de voorzitter kan vaststellen naar gelang van de urgentie van de materie. Overwegende dat de \
in deze beschikking vervatte maatregelen in overeenstemming zijn met het advies van het \
permanent comité, heeft de commissie de aanvraag onderzocht en is zij van oordeel dat aan de \
in de bijlage gestelde voorwaarden is voldaan. De lidstaten treffen alle nodige maatregelen om \
ervoor te zorgen dat de bepalingen van deze richtlijn worden toegepast op de in de handel \
gebrachte producten. Gedurende de overgangsperiode worden de douanerechten bij invoer van de \
in de eerste alinea bedoelde producten in gelijke etappes verlaagd. Wanneer een lidstaat van \
oordeel is dat een aanpassing noodzakelijk is, stelt hij de overige lidstaten en de commissie \
daarvan in kennis met opgave van de redenen voor de voorgestelde wijziging.";

const IT: &str = "\
Tutti gli esseri umani nascono liberi ed eguali in dignità e diritti. Essi sono dotati di \
ragione e di coscienza e devono agire gli uni verso gli altri in spirito di fratellanza. Ad \
ogni individuo spettano tutti i diritti e tutte le libertà enunciate nella presente \
dichiarazione, senza distinzione alcuna, per ragioni di razza, di colore, di sesso, di lingua, \
di religione, di opinione politica o di altro genere, di origine nazionale o sociale, di \
ricchezza, di nascita o di altra condizione. \
Visto il trattato che istituisce la Comunità europea, il Consiglio dell'Unione europea ha \
adottato il presente regolamento. Il presente regolamento entra in vigore il ventesimo giorno \
successivo alla pubblicazione nella gazzetta ufficiale delle Comunità europee. Il presente \
regolamento è obbligatorio in tutti i suoi elementi e direttamente applicabile in ciascuno \
degli stati membri. Il comitato esprime il suo parere sul progetto di misure entro un termine \
che il presidente può fissare in funzione dell'urgenza della questione. Considerando che le \
misure previste dalla presente decisione sono conformi al parere del comitato permanente, la \
commissione ha esaminato la domanda e ritiene che le condizioni stabilite nell'allegato siano \
soddisfatte. Gli stati membri adottano tutte le misure necessarie per garantire che le \
disposizioni della presente direttiva siano applicate ai prodotti immessi sul mercato. Durante \
il periodo transitorio i dazi doganali applicabili alle importazioni dei prodotti di cui al \
primo comma sono ridotti in fasi uguali. Qualora uno stato membro ritenga necessario un \
adeguamento, ne informa gli altri stati membri e la commissione indicando i motivi della \
modifica proposta.";

const RO: &str = "\
Toate ființele umane se nasc libere și egale în demnitate și în drepturi. Ele sunt înzestrate \
cu rațiune și conștiință și trebuie să se comporte unele față de altele în spiritul \
fraternității. Fiecare om se poate prevala de toate drepturile și libertățile proclamate în \
prezenta declarație fără nici un fel de deosebire ca, de pildă, deosebirea de rasă, culoare, \
sex, limbă, religie, opinie politică sau orice altă opinie, de origine națională sau socială, \
avere, naștere sau orice alte împrejurări. \
Având în vedere tratatul de instituire a Comunității Europene, Consiliul Uniunii Europene a \
adoptat prezentul regulament. Prezentul regulament intră în vigoare în a douăzecea zi de la \
data publicării în jurnalul oficial al Comunităților Europene. Prezentul regulament este \
obligatoriu în toate elementele sale și se aplică direct în toate statele membre. Comitetul \
își dă avizul cu privire la proiectul de măsuri într-un termen pe care președintele îl poate \
stabili în funcție de urgența chestiunii. Întrucât măsurile prevăzute de prezenta decizie sunt \
conforme cu avizul comitetului permanent, comisia a examinat cererea și consideră că sunt \
îndeplinite condițiile stabilite în anexă. Statele membre iau toate măsurile necesare pentru a \
se asigura că dispozițiile prezentei directive se aplică produselor introduse pe piață. În \
cursul perioadei de tranziție, taxele vamale aplicabile importurilor de produse menționate la \
primul paragraf se reduc în etape egale. În cazul în care un stat membru consideră că este \
necesară o ajustare, informează celelalte state membre și comisia, indicând motivele \
modificării propuse.";

const PL: &str = "\
Wszyscy ludzie rodzą się wolni i równi pod względem swej godności i swych praw. Są oni \
obdarzeni rozumem i sumieniem i powinni postępować wobec innych w duchu braterstwa. Każdy \
człowiek posiada wszystkie prawa i wolności zawarte w niniejszej deklaracji bez względu na \
jakiekolwiek różnice rasy, koloru, płci, języka, wyznania, poglądów politycznych i innych, \
narodowości, pochodzenia społecznego, majątku, urodzenia lub jakiegokolwiek innego stanu. \
Uwzględniając traktat ustanawiający Wspólnotę Europejską, Rada Unii Europejskiej przyjęła \
niniejsze rozporządzenie. Niniejsze rozporządzenie wchodzi w życie dwudziestego dnia po jego \
opublikowaniu w dzienniku urzędowym Wspólnot Europejskich. Niniejsze rozporządzenie wiąże w \
całości i jest bezpośrednio stosowane we wszystkich państwach członkowskich. Komitet wydaje \
opinię w sprawie projektu środków w terminie, który przewodniczący może określić w zależności \
od pilności sprawy. Zważywszy, że środki przewidziane w niniejszej decyzji są zgodne z opinią \
stałego komitetu, komisja zbadała wniosek i uznaje, że warunki określone w załączniku zostały \
spełnione. Państwa członkowskie podejmują wszelkie niezbędne środki w celu zapewnienia, aby \
przepisy niniejszej dyrektywy były stosowane do produktów wprowadzanych do obrotu. W okresie \
przejściowym cła stosowane w przywozie produktów wymienionych w akapicie pierwszym są obniżane \
w równych etapach. Jeżeli państwo członkowskie uzna, że konieczne jest dostosowanie, informuje \
o tym pozostałe państwa członkowskie i komisję, podając powody proponowanej zmiany.";

const HU: &str = "\
Minden emberi lény szabadon születik és egyenlő méltósága és joga van. Az emberek ésszel és \
lelkiismerettel bírván egymással szemben testvéri szellemben kell hogy viseltessenek. Mindenki, \
bármely megkülönböztetésre, nevezetesen fajra, színre, nemre, nyelvre, vallásra, politikai \
vagy bármely más véleményre, nemzeti vagy társadalmi eredetre, vagyonra, születésre vagy \
bármely más körülményre való tekintet nélkül hivatkozhat a jelen nyilatkozatban kinyilvánított \
összes jogokra és szabadságokra. \
Tekintettel az Európai Közösséget létrehozó szerződésre, az Európai Unió Tanácsa elfogadta ezt \
a rendeletet. Ez a rendelet az Európai Közösségek hivatalos lapjában való kihirdetését követő \
huszadik napon lép hatályba. Ez a rendelet teljes egészében kötelező és közvetlenül \
alkalmazandó valamennyi tagállamban. A bizottság az intézkedések tervezetéről az elnök által \
az ügy sürgősségére tekintettel megállapított határidőn belül nyilvánít véleményt. Mivel az e \
határozatban előírt intézkedések összhangban vannak az állandó bizottság véleményével, a \
bizottság megvizsgálta a kérelmet, és úgy ítéli meg, hogy a mellékletben meghatározott \
feltételek teljesülnek. A tagállamok meghozzák a szükséges intézkedéseket annak biztosítására, \
hogy ezen irányelv rendelkezéseit a forgalomba hozott termékekre alkalmazzák. Az átmeneti \
időszak alatt az első bekezdésben említett termékek behozatalára alkalmazandó vámokat egyenlő \
lépésekben csökkentik. Ha egy tagállam úgy ítéli meg, hogy kiigazításra van szükség, erről \
tájékoztatja a többi tagállamot és a bizottságot, megjelölve a javasolt módosítás indokait.";

const LT: &str = "\
Visi žmonės gimsta laisvi ir lygūs savo orumu ir teisėmis. Jiems suteiktas protas ir sąžinė ir \
jie turi elgtis vienas kito atžvilgiu kaip broliai. Kiekvienas žmogus gali naudotis visomis \
teisėmis ir laisvėmis, paskelbtomis šioje deklaracijoje, be jokių skirtumų, tokių kaip rasė, \
odos spalva, lytis, kalba, religija, politiniai ar kitokie įsitikinimai, nacionalinė ar \
socialinė kilmė, turtinė, luominė ar kitokia padėtis. \
Atsižvelgdama į Europos bendrijos steigimo sutartį, Europos Sąjungos Taryba priėmė šį \
reglamentą. Šis reglamentas įsigalioja dvidešimtą dieną po jo paskelbimo Europos Bendrijų \
oficialiajame leidinyje. Šis reglamentas yra privalomas visas ir tiesiogiai taikomas visose \
valstybėse narėse. Komitetas pateikia savo nuomonę dėl priemonių projekto per terminą, kurį \
pirmininkas gali nustatyti atsižvelgdamas į klausimo skubumą. Kadangi šiame sprendime \
numatytos priemonės atitinka nuolatinio komiteto nuomonę, komisija išnagrinėjo paraišką ir \
mano, kad priede nustatytos sąlygos yra įvykdytos. Valstybės narės imasi visų būtinų priemonių \
užtikrinti, kad šios direktyvos nuostatos būtų taikomos į rinką pateiktiems produktams. \
Pereinamuoju laikotarpiu pirmoje pastraipoje nurodytų produktų importui taikomi muitai \
mažinami lygiomis dalimis. Jei valstybė narė mano, kad pakeitimas yra būtinas, ji apie tai \
praneša kitoms valstybėms narėms ir komisijai, nurodydama siūlomo pakeitimo priežastis.";

const SL: &str = "\
Vsi ljudje se rodijo svobodni in imajo enako dostojanstvo in enake pravice. Obdarjeni so z \
razumom in vestjo in bi morali ravnati drug z drugim kakor bratje. Vsakdo je upravičen do \
uživanja vseh pravic in svoboščin, ki so razglašene s to deklaracijo, ne glede na raso, barvo \
kože, spol, jezik, vero, politično ali drugo prepričanje, narodno ali socialno pripadnost, \
premoženje, rojstvo ali kakršnokoli drugo okoliščino. \
Ob upoštevanju pogodbe o ustanovitvi Evropske skupnosti je Svet Evropske unije sprejel to \
uredbo. Ta uredba začne veljati dvajseti dan po objavi v uradnem listu Evropskih skupnosti. Ta \
uredba je v celoti zavezujoča in se neposredno uporablja v vseh državah članicah. Odbor poda \
svoje mnenje o osnutku ukrepov v roku, ki ga lahko predsednik določi glede na nujnost zadeve. \
Ker so ukrepi, predvideni s to odločbo, v skladu z mnenjem stalnega odbora, je komisija \
preučila zahtevek in meni, da so pogoji iz priloge izpolnjeni. Države članice sprejmejo vse \
potrebne ukrepe za zagotovitev, da se določbe te direktive uporabljajo za proizvode, dane v \
promet. V prehodnem obdobju se carine, ki se uporabljajo za uvoz proizvodov iz prvega \
pododstavka, znižujejo v enakih korakih. Če država članica meni, da je prilagoditev potrebna, \
o tem obvesti druge države članice in komisijo ter navede razloge za predlagano spremembo.";

const HR: &str = "\
Sva ljudska bića rađaju se slobodna i jednaka u dostojanstvu i pravima. Ona su obdarena \
razumom i sviješću i trebaju jedno prema drugome postupati u duhu bratstva. Svakome pripadaju \
sva prava i slobode proglašene u ovoj deklaraciji bez ikakvih razlika u pogledu rase, boje \
kože, spola, jezika, vjere, političkog ili drugog mišljenja, nacionalnog ili društvenog \
podrijetla, imovine, rođenja ili drugih okolnosti. \
Uzimajući u obzir ugovor o osnivanju Europske zajednice, Vijeće Europske unije donijelo je ovu \
uredbu. Ova uredba stupa na snagu dvadesetog dana od dana objave u službenom listu Europskih \
zajednica. Ova je uredba u cijelosti obvezujuća i izravno se primjenjuje u svim državama \
članicama. Odbor daje svoje mišljenje o nacrtu mjera u roku koji predsjednik može odrediti s \
obzirom na hitnost predmeta. Budući da su mjere predviđene ovom odlukom u skladu s mišljenjem \
stalnog odbora, komisija je ispitala zahtjev i smatra da su uvjeti utvrđeni u prilogu \
ispunjeni. Države članice poduzimaju sve potrebne mjere kako bi osigurale da se odredbe ove \
direktive primjenjuju na proizvode stavljene na tržište. Tijekom prijelaznog razdoblja carine \
koje se primjenjuju na uvoz proizvoda iz prvog podstavka snižavaju se u jednakim koracima. Ako \
država članica smatra da je prilagodba potrebna, o tome obavješćuje ostale države članice i \
komisiju navodeći razloge predložene izmjene.";

const CA: &str = "\
Tots els éssers humans neixen lliures i iguals en dignitat i en drets. Són dotats de raó i de \
consciència, i han de comportar-se fraternalment els uns amb els altres. Tothom té tots els \
drets i llibertats proclamats en aquesta declaració, sense cap distinció de raça, color, sexe, \
llengua, religió, opinió política o de qualsevol altra mena, origen nacional o social, \
fortuna, naixement o altra condició. \
Vist el tractat constitutiu de la Comunitat Europea, el Consell de la Unió Europea ha adoptat \
el present reglament. El present reglament entrarà en vigor el vintè dia següent al de la seva \
publicació al diari oficial de les Comunitats Europees. El present reglament serà obligatori \
en tots els seus elements i directament aplicable a cada estat membre. El comitè emetrà el seu \
dictamen sobre el projecte de mesures en un termini que el president podrà fixar en funció de \
la urgència de la qüestió. Considerant que les mesures previstes en la present decisió \
s'ajusten al dictamen del comitè permanent, la comissió ha examinat la sol·licitud i considera \
que es compleixen les condicions establertes a l'annex. Els estats membres adoptaran totes les \
mesures necessàries per garantir que les disposicions de la present directiva s'apliquin als \
productes comercialitzats. Durant el període transitori, els drets de duana aplicables a les \
importacions dels productes esmentats al primer paràgraf es reduiran en etapes iguals. Quan un \
estat membre consideri que cal un ajustament, n'informarà els altres estats membres i la \
comissió, indicant les raons de la modificació proposada.";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_language_has_a_substantial_seed() {
        for &l in &Language::EXTENDED {
            let s = seed_text(l);
            assert!(
                s.chars().count() > 900,
                "{l}: seed too short ({} chars)",
                s.chars().count()
            );
        }
    }

    #[test]
    fn seeds_are_pairwise_distinct() {
        for &a in &Language::EXTENDED {
            for &b in &Language::EXTENDED {
                if a != b {
                    assert_ne!(seed_text(a), seed_text(b), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn seeds_carry_language_specific_characters() {
        assert!(seed_text(Language::French).contains('é'));
        assert!(
            seed_text(Language::Spanish).contains('ñ')
                || seed_text(Language::Spanish).contains('ó')
        );
        assert!(
            seed_text(Language::Danish).contains('æ') || seed_text(Language::Danish).contains('ø')
        );
        assert!(
            seed_text(Language::Swedish).contains('ä')
                || seed_text(Language::Swedish).contains('å')
        );
        assert!(seed_text(Language::Finnish).contains('ä'));
        assert!(seed_text(Language::Estonian).contains('õ'));
        assert!(seed_text(Language::Czech).contains('ř'));
        assert!(
            seed_text(Language::Slovak).contains('ľ') || seed_text(Language::Slovak).contains('ť')
        );
        assert!(seed_text(Language::Portuguese).contains('ã'));
        assert!(
            seed_text(Language::German).contains('ü') || seed_text(Language::German).contains('ß')
        );
        assert!(
            seed_text(Language::Polish).contains('ł') || seed_text(Language::Polish).contains('ą')
        );
        assert!(seed_text(Language::Romanian).contains('ă'));
        assert!(
            seed_text(Language::Hungarian).contains('ő')
                || seed_text(Language::Hungarian).contains('é')
        );
        assert!(
            seed_text(Language::Lithuanian).contains('ė')
                || seed_text(Language::Lithuanian).contains('ž')
        );
        assert!(
            seed_text(Language::Catalan).contains('ò')
                || seed_text(Language::Catalan).contains('ç')
        );
    }
}
