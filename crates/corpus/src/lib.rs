//! # lc-corpus — synthetic multilingual corpus substrate
//!
//! The paper evaluates on the **JRC-Acquis Multilingual Parallel Corpus v3**
//! (EU law in 22 languages; they use 10: Czech, Slovak, Danish, Swedish,
//! Spanish, Portuguese, Finnish, Estonian, French, English; ~5,700 documents
//! per language averaging ~1,300 words; 10% used for training). That corpus
//! is not available in this environment, so this crate provides the closest
//! synthetic equivalent that exercises the same code paths:
//!
//! * [`Language`] — the paper's ten languages.
//! * [`seeds`] — embedded authentic-orthography sample text per language
//!   (rights-declaration passages and EU-law-flavoured sentences), the
//!   training material for the generators.
//! * [`markov`] — order-3 character Markov chains built from the seeds;
//!   generated text preserves each language's characteristic character
//!   3→1-gram transitions and therefore its 4-gram distribution — the only
//!   statistic the classifier consumes.
//! * [`generator`] — deterministic corpus generation: documents, per-language
//!   document sets, and the paper's 10%/90% train/test split.
//! * [`translit`] — transliteration of characters outside ISO-8859-1 (Czech,
//!   Slovak and Estonian orthography needs Latin-2) to their base letters,
//!   mirroring what the paper's alphabet conversion does to Latin-1 accents.
//! * [`jrc`] — TEI/JRC-Acquis-style XML envelopes and the body-extraction
//!   preprocessing step the paper describes ("we parsed a subset of the
//!   corpus with only the text body saved to individual files").
//!
//! Determinism: every document is generated from a seed derived from
//! (corpus seed, language, document index), so corpora are reproducible
//! across runs and across thread counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod jrc;
pub mod language;
pub mod markov;
pub mod seeds;
pub mod stats;
pub mod translit;

pub use generator::{Corpus, CorpusConfig, Document, TrainTestSplit};
pub use language::Language;
pub use markov::MarkovModel;
pub use stats::CorpusStats;
