//! Transliteration of Unicode text to ISO-8859-1 bytes.
//!
//! The paper's hardware consumes 8-bit extended ASCII. Its evaluation
//! languages include Czech, Slovak and Estonian, whose orthography is not
//! covered by ISO-8859-1 (those corpora would have been ISO-8859-2/-4 or
//! similar in 1:1 byte terms). The paper's alphabet conversion maps every
//! accented character to its base letter anyway, so the information the
//! classifier ultimately sees is the base-letter stream. We therefore
//! transliterate characters outside Latin-1 (mostly Latin Extended-A) to
//! their base letters at corpus-encoding time — this is exactly the
//! composition of "encode in the right 8859 variant" and "fold accents in
//! the conversion table", without needing per-language code pages.

/// Convert a Unicode scalar to an ISO-8859-1 byte:
///
/// * Latin-1 range (U+0000–U+00FF): identity.
/// * Latin Extended-A letters (Czech/Slovak/Estonian/…): base letter,
///   preserving case.
/// * Everything else: space.
pub fn char_to_latin1(c: char) -> u8 {
    let cp = c as u32;
    if cp < 0x100 {
        return cp as u8;
    }
    match c {
        // Latin Extended-A, grouped by base letter. Upper/lower handled
        // explicitly to preserve case (the classifier folds case later, but
        // the corpus should look like real text).
        'Ā' | 'Ă' | 'Ą' => b'A',
        'ā' | 'ă' | 'ą' => b'a',
        'Ć' | 'Ĉ' | 'Ċ' | 'Č' => b'C',
        'ć' | 'ĉ' | 'ċ' | 'č' => b'c',
        'Ď' | 'Đ' => b'D',
        'ď' | 'đ' => b'd',
        'Ē' | 'Ĕ' | 'Ė' | 'Ę' | 'Ě' => b'E',
        'ē' | 'ĕ' | 'ė' | 'ę' | 'ě' => b'e',
        'Ĝ' | 'Ğ' | 'Ġ' | 'Ģ' => b'G',
        'ĝ' | 'ğ' | 'ġ' | 'ģ' => b'g',
        'Ĥ' | 'Ħ' => b'H',
        'ĥ' | 'ħ' => b'h',
        'Ĩ' | 'Ī' | 'Ĭ' | 'Į' | 'İ' => b'I',
        'ĩ' | 'ī' | 'ĭ' | 'į' | 'ı' => b'i',
        'Ĵ' => b'J',
        'ĵ' => b'j',
        'Ķ' => b'K',
        'ķ' | 'ĸ' => b'k',
        'Ĺ' | 'Ļ' | 'Ľ' | 'Ŀ' | 'Ł' => b'L',
        'ĺ' | 'ļ' | 'ľ' | 'ŀ' | 'ł' => b'l',
        'Ń' | 'Ņ' | 'Ň' | 'Ŋ' => b'N',
        'ń' | 'ņ' | 'ň' | 'ŉ' | 'ŋ' => b'n',
        'Ō' | 'Ŏ' | 'Ő' => b'O',
        'ō' | 'ŏ' | 'ő' => b'o',
        'Œ' => b'O',
        'œ' => b'o',
        'Ŕ' | 'Ŗ' | 'Ř' => b'R',
        'ŕ' | 'ŗ' | 'ř' => b'r',
        'Ś' | 'Ŝ' | 'Ş' | 'Š' => b'S',
        'ś' | 'ŝ' | 'ş' | 'š' => b's',
        'Ţ' | 'Ť' | 'Ŧ' => b'T',
        'ţ' | 'ť' | 'ŧ' => b't',
        'Ũ' | 'Ū' | 'Ŭ' | 'Ů' | 'Ű' | 'Ų' => b'U',
        'ũ' | 'ū' | 'ŭ' | 'ů' | 'ű' | 'ų' => b'u',
        'Ŵ' => b'W',
        'ŵ' => b'w',
        'Ŷ' => b'Y',
        'ŷ' => b'y',
        'Ÿ' => 0xDF + 0x20, // ÿ (Latin-1 0xFF)
        'Ź' | 'Ż' | 'Ž' => b'Z',
        'ź' | 'ż' | 'ž' => b'z',
        // Latin Extended-B: Romanian comma-below letters.
        '\u{0218}' => b'S', // Ș
        '\u{0219}' => b's', // ș
        '\u{021A}' => b'T', // Ț
        '\u{021B}' => b't', // ț
        // Common punctuation outside Latin-1.
        '\u{2018}' | '\u{2019}' => b'\'',
        '\u{201C}' | '\u{201D}' => b'"',
        '\u{2013}' | '\u{2014}' => b'-',
        '\u{2026}' => b'.',
        _ => b' ',
    }
}

/// Transliterate a whole string to ISO-8859-1 bytes.
pub fn to_latin1(s: &str) -> Vec<u8> {
    s.chars().map(char_to_latin1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latin1_range_is_identity() {
        for cp in 0u32..256 {
            let c = char::from_u32(cp).unwrap();
            assert_eq!(char_to_latin1(c), cp as u8);
        }
    }

    #[test]
    fn czech_specials_map_to_base_letters() {
        let cases = [
            ('š', b's'),
            ('Š', b'S'),
            ('č', b'c'),
            ('ř', b'r'),
            ('ž', b'z'),
            ('ě', b'e'),
            ('ů', b'u'),
            ('ď', b'd'),
            ('ť', b't'),
            ('ň', b'n'),
            ('ľ', b'l'),
            ('ĺ', b'l'),
            ('ŕ', b'r'),
        ];
        for (c, b) in cases {
            assert_eq!(char_to_latin1(c), b, "{c}");
        }
    }

    #[test]
    fn estonian_specials_survive() {
        // õ ä ö ü are all Latin-1 and must pass through unchanged.
        assert_eq!(char_to_latin1('õ'), 0xF5);
        assert_eq!(char_to_latin1('ä'), 0xE4);
        assert_eq!(char_to_latin1('ö'), 0xF6);
        assert_eq!(char_to_latin1('ü'), 0xFC);
        // š and ž (used in loanwords) transliterate.
        assert_eq!(char_to_latin1('š'), b's');
    }

    #[test]
    fn romanian_comma_below_letters_transliterate() {
        assert_eq!(char_to_latin1('ș'), b's');
        assert_eq!(char_to_latin1('ț'), b't');
        assert_eq!(char_to_latin1('Ș'), b'S');
        assert_eq!(char_to_latin1('Ț'), b'T');
    }

    #[test]
    fn unknown_characters_become_space() {
        assert_eq!(char_to_latin1('字'), b' ');
        assert_eq!(char_to_latin1('€'), b' ');
        assert_eq!(char_to_latin1('Ω'), b' ');
    }

    #[test]
    fn seed_texts_transliterate_without_information_loss() {
        // Every seed should come through with < 0.5% of characters falling
        // to the unknown-char space path (letters must survive).
        use crate::language::Language;
        use crate::seeds::seed_text;
        for &l in &Language::EXTENDED {
            let s = seed_text(l);
            let bytes = to_latin1(s);
            let spaces_in = s.chars().filter(|c| *c == ' ').count();
            let spaces_out = bytes.iter().filter(|&&b| b == b' ').count();
            let lost = spaces_out.saturating_sub(spaces_in);
            let frac = lost as f64 / bytes.len() as f64;
            assert!(
                frac < 0.005,
                "{l}: {lost} characters lost to space ({frac:.4})"
            );
        }
    }
}
