//! Order-3 character Markov chains over ISO-8859-1 bytes.
//!
//! A chain trained on a language's seed text generates unbounded synthetic
//! text whose character 4-gram distribution matches the seed's (a 3-byte
//! context predicts the next byte — precisely the statistic a 4-gram
//! classifier measures). Sampling uses cumulative weight tables per context
//! for O(log v) draws, and contexts unseen in training fall back to starting
//! a fresh sentence context.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Order of the chain: 3 bytes of context.
pub const ORDER: usize = 3;

#[derive(Clone, Debug, Default)]
struct Transition {
    /// Next-byte candidates (sorted by byte for determinism).
    bytes: Vec<u8>,
    /// Cumulative counts aligned with `bytes`.
    cumulative: Vec<u32>,
}

impl Transition {
    fn total(&self) -> u32 {
        *self.cumulative.last().unwrap_or(&0)
    }

    fn sample(&self, rng: &mut SmallRng) -> u8 {
        debug_assert!(!self.bytes.is_empty());
        let r = rng.gen_range(0..self.total());
        // First cumulative value strictly greater than r.
        let idx = self.cumulative.partition_point(|&c| c <= r);
        self.bytes[idx]
    }
}

/// An order-3 byte-level Markov model.
#[derive(Clone, Debug)]
pub struct MarkovModel {
    transitions: HashMap<[u8; ORDER], Transition>,
    /// Contexts that started sentences in the training text, used as
    /// (re)start states.
    starts: Vec<[u8; ORDER]>,
}

impl MarkovModel {
    /// Train on a byte corpus (ISO-8859-1). Runs of whitespace are collapsed
    /// to single spaces first so the chain does not learn formatting
    /// artefacts.
    ///
    /// # Panics
    ///
    /// Panics if the (normalized) text is shorter than `ORDER + 1` bytes.
    pub fn train(text: &[u8]) -> Self {
        let norm = normalize_whitespace(text);
        assert!(
            norm.len() > ORDER,
            "training text too short: {} bytes after normalization",
            norm.len()
        );

        let mut counts: HashMap<[u8; ORDER], HashMap<u8, u32>> = HashMap::new();
        let mut starts = Vec::new();
        for w in norm.windows(ORDER + 1) {
            let ctx = [w[0], w[1], w[2]];
            *counts.entry(ctx).or_default().entry(w[3]).or_insert(0) += 1;
            // A context following ". " or at the very beginning is a start.
        }
        for (i, w) in norm.windows(ORDER).enumerate() {
            if i == 0 || (i >= 2 && norm[i - 2] == b'.' && norm[i - 1] == b' ') {
                starts.push([w[0], w[1], w[2]]);
            }
        }
        if starts.is_empty() {
            let w = &norm[..ORDER];
            starts.push([w[0], w[1], w[2]]);
        }

        let transitions = counts
            .into_iter()
            .map(|(ctx, next)| {
                let mut pairs: Vec<(u8, u32)> = next.into_iter().collect();
                pairs.sort_unstable_by_key(|p| p.0);
                let mut bytes = Vec::with_capacity(pairs.len());
                let mut cumulative = Vec::with_capacity(pairs.len());
                let mut acc = 0u32;
                for (b, c) in pairs {
                    acc += c;
                    bytes.push(b);
                    cumulative.push(acc);
                }
                (ctx, Transition { bytes, cumulative })
            })
            .collect();

        Self {
            transitions,
            starts,
        }
    }

    /// Number of distinct contexts learned.
    pub fn contexts(&self) -> usize {
        self.transitions.len()
    }

    /// Generate `len` bytes of text, deterministically from `seed`.
    pub fn generate(&self, len: usize, seed: u64) -> Vec<u8> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(len + ORDER);
        let mut ctx = self.starts[rng.gen_range(0..self.starts.len())];
        out.extend_from_slice(&ctx);
        while out.len() < len {
            match self.transitions.get(&ctx) {
                Some(t) => {
                    let b = t.sample(&mut rng);
                    out.push(b);
                    ctx = [ctx[1], ctx[2], b];
                }
                None => {
                    // Dead end (context only appeared at the end of the
                    // training text): restart a sentence.
                    out.push(b' ');
                    ctx = self.starts[rng.gen_range(0..self.starts.len())];
                    out.extend_from_slice(&ctx);
                }
            }
        }
        out.truncate(len);
        out
    }
}

/// Collapse whitespace runs to single spaces and trim.
pub fn normalize_whitespace(text: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(text.len());
    let mut in_space = true; // leading whitespace trimmed
    for &b in text {
        let is_ws = b == b' ' || b == b'\n' || b == b'\t' || b == b'\r';
        if is_ws {
            if !in_space {
                out.push(b' ');
                in_space = true;
            }
        } else {
            out.push(b);
            in_space = false;
        }
    }
    while out.last() == Some(&b' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::seed_text;
    use crate::translit::to_latin1;
    use crate::Language;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn english_model() -> MarkovModel {
        MarkovModel::train(&to_latin1(seed_text(Language::English)))
    }

    #[test]
    fn generates_requested_length() {
        let m = english_model();
        for len in [0usize, 1, 3, 4, 100, 5000] {
            assert_eq!(m.generate(len, 1).len(), len);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let m = english_model();
        assert_eq!(m.generate(500, 7), m.generate(500, 7));
        assert_ne!(m.generate(500, 7), m.generate(500, 8));
    }

    #[test]
    fn generated_4grams_come_from_training_distribution() {
        // Every generated 4-gram (away from restart splices) must exist in
        // the training text, since an order-3 chain can only emit trained
        // transitions.
        let seed = to_latin1(seed_text(Language::English));
        let norm = normalize_whitespace(&seed);
        let trained: HashSet<&[u8]> = norm.windows(4).collect();
        let m = MarkovModel::train(&seed);
        let gen = m.generate(2000, 3);
        let mut misses = 0;
        for w in gen.windows(4) {
            if !trained.contains(w) {
                misses += 1; // restart splices can create novel windows
            }
        }
        let frac = misses as f64 / (gen.len() - 3) as f64;
        assert!(frac < 0.02, "too many out-of-model 4-grams: {frac:.4}");
    }

    #[test]
    fn whitespace_normalization() {
        assert_eq!(normalize_whitespace(b"  a  b\n\nc  "), b"a b c".to_vec());
        assert_eq!(normalize_whitespace(b""), Vec::<u8>::new());
        assert_eq!(normalize_whitespace(b"   "), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "training text too short")]
    fn short_training_text_rejected() {
        let _ = MarkovModel::train(b"ab");
    }

    #[test]
    fn all_language_models_train_and_generate() {
        for &l in &Language::EXTENDED {
            let m = MarkovModel::train(&to_latin1(seed_text(l)));
            assert!(m.contexts() > 300, "{l}: only {} contexts", m.contexts());
            let text = m.generate(1000, 42);
            assert_eq!(text.len(), 1000);
            // Generated text should contain spaces (word-like structure).
            assert!(text.iter().filter(|&&b| b == b' ').count() > 50, "{l}");
        }
    }

    #[test]
    fn models_of_different_languages_disagree() {
        // Cross-check: text generated by the French model shares few 4-grams
        // with Finnish training text, and vice versa.
        let fr = MarkovModel::train(&to_latin1(seed_text(Language::French)));
        let fi_text = normalize_whitespace(&to_latin1(seed_text(Language::Finnish)));
        let fi_4grams: HashSet<&[u8]> = fi_text.windows(4).collect();
        let gen = fr.generate(3000, 5);
        let hits = gen.windows(4).filter(|w| fi_4grams.contains(*w)).count();
        let frac = hits as f64 / (gen.len() - 3) as f64;
        assert!(
            frac < 0.5,
            "French output overlaps Finnish too much: {frac:.3}"
        );
    }

    proptest! {
        #[test]
        fn generate_never_panics(len in 0usize..2000, seed in any::<u64>()) {
            let m = english_model();
            let out = m.generate(len, seed);
            prop_assert_eq!(out.len(), len);
        }
    }
}
