//! JRC-Acquis-style document formatting and parsing.
//!
//! §5: *"For our tests we parsed a subset of the corpus with only the text
//! body saved to individual files."* The real JRC-Acquis distribution is
//! TEI-flavoured XML (a `<TEI.2>` document with a `<body>` of numbered
//! `<p>` paragraphs and metadata in the header). To exercise the same
//! preprocessing path, this module can wrap generated documents in that
//! envelope ([`wrap_document`]) and parse the body text back out
//! ([`extract_body`]), so the corpus pipeline covers: generate → format as
//! XML → parse body → classify, exactly the paper's flow.
//!
//! The parser is a small, dependency-free scanner for this envelope shape
//! (not a general XML parser): it extracts text inside `<p>` elements of
//! the `<body>`, decodes the five standard XML entities, and ignores
//! everything else.

use crate::generator::Document;

/// Wrap a document body in a JRC-Acquis-style TEI envelope.
pub fn wrap_document(doc: &Document) -> Vec<u8> {
    let mut out = Vec::with_capacity(doc.text.len() + 512);
    let id = format!("jrc-{}-{:05}", doc.language.code(), doc.index);
    out.extend_from_slice(
        format!(
            "<TEI.2 id=\"{id}\" lang=\"{}\">\n<teiHeader>\n<fileDesc>\n<titleStmt>\n\
             <title>{id}</title>\n</titleStmt>\n</fileDesc>\n</teiHeader>\n<text>\n<body>\n",
            doc.language.code()
        )
        .as_bytes(),
    );
    // Split the body into paragraphs at sentence boundaries, ~400 bytes each.
    let mut para_start = 0usize;
    let mut n = 1usize;
    while para_start < doc.text.len() {
        let target_end = (para_start + 400).min(doc.text.len());
        // Extend to the next ". " or end of text.
        let mut end = target_end;
        while end < doc.text.len()
            && !(doc.text[end] == b' ' && end > 0 && doc.text[end - 1] == b'.')
        {
            end += 1;
        }
        out.extend_from_slice(format!("<p n=\"{n}\">").as_bytes());
        out.extend_from_slice(&escape_xml(&doc.text[para_start..end]));
        out.extend_from_slice(b"</p>\n");
        para_start = end;
        n += 1;
    }
    out.extend_from_slice(b"</body>\n</text>\n</TEI.2>\n");
    out
}

/// Escape the XML-special bytes of a text run.
pub fn escape_xml(text: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(text.len());
    for &b in text {
        match b {
            b'&' => out.extend_from_slice(b"&amp;"),
            b'<' => out.extend_from_slice(b"&lt;"),
            b'>' => out.extend_from_slice(b"&gt;"),
            b'"' => out.extend_from_slice(b"&quot;"),
            b'\'' => out.extend_from_slice(b"&apos;"),
            _ => out.push(b),
        }
    }
    out
}

/// Extract the text body from a TEI-style envelope: the concatenation of
/// all `<p>` element contents (entity-decoded), in document order. The
/// wrapper splits the body into consecutive exact slices, so extraction
/// reconstructs the original text byte-for-byte. Returns `None` if no
/// `<body>` is present.
pub fn extract_body(xml: &[u8]) -> Option<Vec<u8>> {
    let body_start = find(xml, b"<body>")? + b"<body>".len();
    let body_end = find(&xml[body_start..], b"</body>")? + body_start;
    let body = &xml[body_start..body_end];

    let mut out = Vec::with_capacity(body.len());
    let mut pos = 0usize;
    while let Some(p_open_rel) = find(&body[pos..], b"<p") {
        let p_open = pos + p_open_rel;
        // Find the end of the opening tag.
        let tag_end = p_open + find(&body[p_open..], b">")? + 1;
        let p_close = tag_end + find(&body[tag_end..], b"</p>")?;
        decode_entities(&body[tag_end..p_close], &mut out);
        pos = p_close + b"</p>".len();
    }
    Some(out)
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn decode_entities(text: &[u8], out: &mut Vec<u8>) {
    let mut i = 0usize;
    while i < text.len() {
        if text[i] == b'&' {
            let rest = &text[i..];
            let (replacement, len) = if rest.starts_with(b"&amp;") {
                (b'&', 5)
            } else if rest.starts_with(b"&lt;") {
                (b'<', 4)
            } else if rest.starts_with(b"&gt;") {
                (b'>', 4)
            } else if rest.starts_with(b"&quot;") {
                (b'"', 6)
            } else if rest.starts_with(b"&apos;") {
                (b'\'', 6)
            } else {
                (b'&', 1)
            };
            out.push(replacement);
            i += len;
        } else {
            out.push(text[i]);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Corpus, CorpusConfig};
    use crate::language::Language;
    use proptest::prelude::*;

    fn sample_doc() -> Document {
        let corpus = Corpus::generate_for(&[Language::French], CorpusConfig::test_scale());
        corpus.documents()[0].clone()
    }

    #[test]
    fn wrap_then_extract_roundtrips_body_text() {
        let doc = sample_doc();
        let xml = wrap_document(&doc);
        let body = extract_body(&xml).expect("body present");
        // Paragraphs are consecutive exact slices of the text, so the
        // concatenation reconstructs it byte-for-byte.
        assert_eq!(body, doc.text);
    }

    #[test]
    fn envelope_carries_language_metadata() {
        let doc = sample_doc();
        let xml = wrap_document(&doc);
        let s = String::from_utf8_lossy(&xml);
        assert!(s.contains("lang=\"fr\""));
        assert!(s.contains("<teiHeader>"));
        assert!(s.contains("<p n=\"1\">"));
    }

    #[test]
    fn extract_ignores_header_text() {
        let xml = b"<TEI.2><teiHeader><title>NOT BODY</title></teiHeader>\
                    <text><body><p>real content</p></body></text></TEI.2>";
        let body = extract_body(xml).unwrap();
        assert_eq!(body, b"real content");
    }

    #[test]
    fn missing_body_yields_none() {
        assert_eq!(extract_body(b"<TEI.2><text></text></TEI.2>"), None);
        assert_eq!(extract_body(b""), None);
    }

    #[test]
    fn entities_decode() {
        let xml = b"<body><p>a &amp; b &lt;c&gt; &quot;d&quot; &apos;e&apos;</p></body>";
        let body = extract_body(xml).unwrap();
        assert_eq!(body, b"a & b <c> \"d\" 'e'");
    }

    #[test]
    fn multiple_paragraphs_concatenate_in_order() {
        let xml = b"<body><p n=\"1\">first para. </p>\n<p n=\"2\">second para.</p></body>";
        let body = extract_body(xml).unwrap();
        assert_eq!(body, b"first para. second para.");
    }

    #[test]
    fn classification_identical_through_xml_path() {
        // The paper's flow: parse XML -> classify body. Decision must match
        // classifying the raw generated text.
        let corpus = Corpus::generate(CorpusConfig::test_scale());
        for d in corpus.split().test_all().take(6) {
            let xml = wrap_document(d);
            let body = extract_body(&xml).unwrap();
            assert_eq!(body, d.text, "XML path altered the document body");
        }
    }

    proptest! {
        /// escape → decode is the identity on arbitrary bytes.
        #[test]
        fn escape_decode_roundtrip(text in proptest::collection::vec(any::<u8>(), 0..300)) {
            let escaped = escape_xml(&text);
            let mut decoded = Vec::new();
            decode_entities(&escaped, &mut decoded);
            prop_assert_eq!(decoded, text);
        }
    }
}
