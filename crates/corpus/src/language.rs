//! The ten languages of the paper's evaluation (§5: "We used 10 languages:
//! Czech, Slovak, Danish, Swedish, Spanish, Portuguese, Finnish, Estonian,
//! French and English.").

use std::fmt;

/// One of the ten evaluation languages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Language {
    /// Czech (cs)
    Czech,
    /// Slovak (sk) — the paper notes cs/sk are a confusable pair.
    Slovak,
    /// Danish (da)
    Danish,
    /// Swedish (sv) — da/sv confusable pair.
    Swedish,
    /// Spanish (es)
    Spanish,
    /// Portuguese (pt) — es/pt confusable pair ("consistently more Spanish
    /// documents were misclassified as Portuguese").
    Portuguese,
    /// Finnish (fi)
    Finnish,
    /// Estonian (et) — fi/et confusable pair ("Estonian documents as
    /// Finnish").
    Estonian,
    /// French (fr)
    French,
    /// English (en)
    English,
    // --- Extended set (beyond the paper's ten): used to exercise the
    // 30-language hardware configuration and the scalability claims.
    /// German (de)
    German,
    /// Dutch (nl) — de/nl form a Germanic confusable pair.
    Dutch,
    /// Italian (it)
    Italian,
    /// Romanian (ro) — it/ro form a Romance confusable pair.
    Romanian,
    /// Polish (pl)
    Polish,
    /// Hungarian (hu)
    Hungarian,
    /// Lithuanian (lt)
    Lithuanian,
    /// Slovenian (sl) — sl/hr form a South-Slavic confusable pair.
    Slovenian,
    /// Croatian (hr)
    Croatian,
    /// Catalan (ca)
    Catalan,
}

impl Language {
    /// The paper's ten evaluation languages, in its listing order.
    pub const ALL: [Language; 10] = [
        Language::Czech,
        Language::Slovak,
        Language::Danish,
        Language::Swedish,
        Language::Spanish,
        Language::Portuguese,
        Language::Finnish,
        Language::Estonian,
        Language::French,
        Language::English,
    ];

    /// The extended set: the paper's ten plus ten more European languages,
    /// used to exercise the 30-language hardware configuration (§5.2) at
    /// realistic functional scale.
    pub const EXTENDED: [Language; 20] = [
        Language::Czech,
        Language::Slovak,
        Language::Danish,
        Language::Swedish,
        Language::Spanish,
        Language::Portuguese,
        Language::Finnish,
        Language::Estonian,
        Language::French,
        Language::English,
        Language::German,
        Language::Dutch,
        Language::Italian,
        Language::Romanian,
        Language::Polish,
        Language::Hungarian,
        Language::Lithuanian,
        Language::Slovenian,
        Language::Croatian,
        Language::Catalan,
    ];

    /// ISO 639-1 code.
    pub fn code(self) -> &'static str {
        match self {
            Language::Czech => "cs",
            Language::Slovak => "sk",
            Language::Danish => "da",
            Language::Swedish => "sv",
            Language::Spanish => "es",
            Language::Portuguese => "pt",
            Language::Finnish => "fi",
            Language::Estonian => "et",
            Language::French => "fr",
            Language::English => "en",
            Language::German => "de",
            Language::Dutch => "nl",
            Language::Italian => "it",
            Language::Romanian => "ro",
            Language::Polish => "pl",
            Language::Hungarian => "hu",
            Language::Lithuanian => "lt",
            Language::Slovenian => "sl",
            Language::Croatian => "hr",
            Language::Catalan => "ca",
        }
    }

    /// English name.
    pub fn name(self) -> &'static str {
        match self {
            Language::Czech => "Czech",
            Language::Slovak => "Slovak",
            Language::Danish => "Danish",
            Language::Swedish => "Swedish",
            Language::Spanish => "Spanish",
            Language::Portuguese => "Portuguese",
            Language::Finnish => "Finnish",
            Language::Estonian => "Estonian",
            Language::French => "French",
            Language::English => "English",
            Language::German => "German",
            Language::Dutch => "Dutch",
            Language::Italian => "Italian",
            Language::Romanian => "Romanian",
            Language::Polish => "Polish",
            Language::Hungarian => "Hungarian",
            Language::Lithuanian => "Lithuanian",
            Language::Slovenian => "Slovenian",
            Language::Croatian => "Croatian",
            Language::Catalan => "Catalan",
        }
    }

    /// Stable index (position in [`Language::EXTENDED`]; the paper's ten
    /// occupy `0..10` in paper order).
    pub fn index(self) -> usize {
        Language::EXTENDED.iter().position(|&l| l == self).unwrap()
    }

    /// Look up by index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 20`.
    pub fn from_index(i: usize) -> Language {
        Language::EXTENDED[i]
    }

    /// Parse an ISO code.
    pub fn from_code(code: &str) -> Option<Language> {
        Language::EXTENDED
            .iter()
            .copied()
            .find(|l| l.code() == code)
    }

    /// The paper's observed confusable partner, if any (§5.2: "consistently
    /// more Spanish documents were misclassified as Portuguese, and Estonian
    /// documents as Finnish"; cs/sk and da/sv are the other similar pairs in
    /// the set).
    pub fn confusable_partner(self) -> Option<Language> {
        match self {
            Language::Czech => Some(Language::Slovak),
            Language::Slovak => Some(Language::Czech),
            Language::Danish => Some(Language::Swedish),
            Language::Swedish => Some(Language::Danish),
            Language::Spanish => Some(Language::Portuguese),
            Language::Portuguese => Some(Language::Spanish),
            Language::Finnish => Some(Language::Estonian),
            Language::Estonian => Some(Language::Finnish),
            Language::German => Some(Language::Dutch),
            Language::Dutch => Some(Language::German),
            Language::Italian => Some(Language::Romanian),
            Language::Romanian => Some(Language::Italian),
            Language::Slovenian => Some(Language::Croatian),
            Language::Croatian => Some(Language::Slovenian),
            Language::French
            | Language::English
            | Language::Polish
            | Language::Hungarian
            | Language::Lithuanian
            | Language::Catalan => None,
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_languages_with_unique_codes() {
        let codes: std::collections::HashSet<&str> =
            Language::EXTENDED.iter().map(|l| l.code()).collect();
        assert_eq!(codes.len(), 20);
    }

    #[test]
    fn paper_ten_prefix_the_extended_set() {
        assert_eq!(&Language::EXTENDED[..10], &Language::ALL[..]);
    }

    #[test]
    fn index_round_trips() {
        for (i, &l) in Language::EXTENDED.iter().enumerate() {
            assert_eq!(l.index(), i);
            assert_eq!(Language::from_index(i), l);
        }
    }

    #[test]
    fn code_round_trips() {
        for &l in &Language::EXTENDED {
            assert_eq!(Language::from_code(l.code()), Some(l));
        }
        assert_eq!(Language::from_code("xx"), None);
    }

    #[test]
    fn confusable_pairs_are_symmetric() {
        for &l in &Language::EXTENDED {
            if let Some(p) = l.confusable_partner() {
                assert_eq!(p.confusable_partner(), Some(l));
                assert_ne!(p, l);
            }
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Language::Czech.to_string(), "Czech");
        assert_eq!(format!("{}", Language::English), "English");
    }
}
