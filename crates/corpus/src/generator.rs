//! Deterministic corpus generation with the paper's train/test protocol.
//!
//! §5: *"There were an average of 5,700 documents for each language, with an
//! average of 1,300 words per document. We used 10% of the corpus as the
//! training set for each language, and tested the classifier on the
//! remaining documents."*
//!
//! The default [`CorpusConfig`] is scaled down (documents are cheap to
//! generate but classification experiments should run in CI time); the
//! benchmark harness scales it up towards the paper's sizes.

use crate::language::Language;
use crate::markov::MarkovModel;
use crate::seeds::seed_text;
use crate::translit::to_latin1;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// One synthetic document: ISO-8859-1 text in a known language.
#[derive(Clone, Debug)]
pub struct Document {
    /// Ground-truth language.
    pub language: Language,
    /// Index of the document within its language set.
    pub index: usize,
    /// ISO-8859-1 text body.
    pub text: Vec<u8>,
}

impl Document {
    /// Document size in bytes (the unit of the paper's throughput numbers).
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the document body is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}

/// Corpus generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Documents per language.
    pub docs_per_language: usize,
    /// Mean document length in bytes. The paper's average file is ~10 KB
    /// (1,300 words). Lengths are drawn uniformly from ±50% of the mean,
    /// matching the paper's "files with sizes varying from a few Kilobytes
    /// to several Megabytes" spirit without the long tail.
    pub mean_doc_bytes: usize,
    /// Fraction of documents used for training (paper: 0.10).
    pub train_fraction: f64,
    /// Similar-language contamination ceiling. Each **test** document of a
    /// language with a confusable partner (cs/sk, es/pt, fi/et, da/sv) draws
    /// a per-document contamination level α uniformly from `[0,
    /// confusion_mix]`; each ~200-byte segment then comes from the partner's
    /// model with probability α. Training documents stay clean (profiles are
    /// built from curated text). Real corpora in closely related languages
    /// share vocabulary, names and quotations, so pure Markov text from
    /// distinct seeds is *more* separable than reality; this knob restores
    /// the paper's observed confusion structure ("consistently more Spanish
    /// documents were misclassified as Portuguese, and Estonian documents as
    /// Finnish") and spreads top-2 margins down to zero so Bloom false
    /// positives have a measurable accuracy cost. Languages without a
    /// partner (en, fr) are unaffected. 0.0 disables mixing.
    pub confusion_mix: f64,
    /// Relative band `[lo, hi] ⊆ [0, 1]` from which the per-document
    /// contamination level is drawn: `α = confusion_mix · U(lo, hi)`.
    /// `(0.0, 1.0)` spreads margins uniformly; a narrow band near 1.0
    /// concentrates documents at a chosen difficulty (used by the Table 1
    /// experiment to place documents at the decision-noise knee, where Bloom
    /// false positives measurably move accuracy).
    pub confusion_band: (f64, f64),
    /// Master seed; every document derives its own RNG stream from this.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            docs_per_language: 120,
            mean_doc_bytes: 4 * 1024,
            train_fraction: 0.10,
            confusion_mix: 0.0,
            confusion_band: (0.0, 1.0),
            seed: 0x5EED_1CB1,
        }
    }
}

impl CorpusConfig {
    /// A configuration shaped like the paper's evaluation (≈5,700 docs/lang,
    /// ≈10 KB average) — use from benches, not unit tests.
    pub fn paper_scale() -> Self {
        Self {
            docs_per_language: 5700,
            mean_doc_bytes: 10 * 1024,
            train_fraction: 0.10,
            confusion_mix: 0.0,
            confusion_band: (0.0, 1.0),
            seed: 0x5EED_1CB1,
        }
    }

    /// A configuration that reproduces the paper's *hard* confusable-pair
    /// structure: similar languages share a substantial fraction of their
    /// surface text, so top-2 margins shrink and Bloom false positives have
    /// a measurable accuracy cost (the Table 1 regime).
    pub fn confusable_scale() -> Self {
        Self {
            docs_per_language: 150,
            mean_doc_bytes: 2 * 1024,
            train_fraction: 0.10,
            confusion_mix: 0.5,
            confusion_band: (0.0, 1.0),
            seed: 0x5EED_1CB1,
        }
    }

    /// A small configuration for fast tests.
    pub fn test_scale() -> Self {
        Self {
            docs_per_language: 30,
            mean_doc_bytes: 2 * 1024,
            train_fraction: 0.10,
            confusion_mix: 0.0,
            confusion_band: (0.0, 1.0),
            seed: 0x5EED_1CB1,
        }
    }
}

/// A generated multilingual corpus with a train/test split.
#[derive(Clone, Debug)]
pub struct Corpus {
    config: CorpusConfig,
    languages: Vec<Language>,
    documents: Vec<Document>,
    train_per_lang: usize,
}

/// Borrowed view of the split.
#[derive(Clone, Copy, Debug)]
pub struct TrainTestSplit<'a> {
    corpus: &'a Corpus,
}

impl Corpus {
    /// Generate a corpus for all ten paper languages.
    pub fn generate(config: CorpusConfig) -> Self {
        Self::generate_for(&Language::ALL, config)
    }

    /// Generate a corpus for a subset of languages. Document generation is
    /// parallel over (language, index) pairs and fully deterministic: each
    /// document's RNG seed is a function of (config.seed, language, index).
    pub fn generate_for(languages: &[Language], config: CorpusConfig) -> Self {
        assert!(!languages.is_empty(), "need at least one language");
        assert!(config.docs_per_language > 0, "need at least one document");
        assert!(
            (0.0..1.0).contains(&config.train_fraction),
            "train_fraction must be in [0, 1)"
        );
        assert!(
            (0.0..=0.5).contains(&config.confusion_mix),
            "confusion_mix must be in [0, 0.5] (beyond 0.5 the partner dominates)"
        );
        {
            let (lo, hi) = config.confusion_band;
            assert!(
                (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi,
                "confusion_band must satisfy 0 <= lo <= hi <= 1"
            );
        }
        let train_n = (((config.docs_per_language as f64) * config.train_fraction).round()
            as usize)
            .max(1)
            .min(config.docs_per_language - 1);

        // Models for requested languages plus any confusable partners the
        // mixing knob needs.
        let mut model_langs: Vec<Language> = languages.to_vec();
        if config.confusion_mix > 0.0 {
            for &l in languages {
                if let Some(p) = l.confusable_partner() {
                    if !model_langs.contains(&p) {
                        model_langs.push(p);
                    }
                }
            }
        }
        let models: Vec<(Language, MarkovModel)> = model_langs
            .par_iter()
            .map(|&l| (l, MarkovModel::train(&to_latin1(seed_text(l)))))
            .collect();
        let model_of = |l: Language| -> &MarkovModel {
            &models
                .iter()
                .find(|(ml, _)| *ml == l)
                .expect("model trained")
                .1
        };

        let documents: Vec<Document> = languages
            .par_iter()
            .flat_map(|&lang| {
                (0..config.docs_per_language)
                    .into_par_iter()
                    .map(move |index| {
                        let doc_seed = derive_seed(config.seed, lang, index);
                        let mut rng = SmallRng::seed_from_u64(doc_seed);
                        let lo = config.mean_doc_bytes / 2;
                        let hi = config.mean_doc_bytes + config.mean_doc_bytes / 2;
                        let len = rng.gen_range(lo..=hi.max(lo + 1));
                        let own = model_of(lang);
                        // Contamination applies to test documents only.
                        let partner = if config.confusion_mix > 0.0 && index >= train_n {
                            lang.confusable_partner().map(model_of)
                        } else {
                            None
                        };
                        let text = match partner {
                            Some(partner) => {
                                let (lo, hi) = config.confusion_band;
                                let u = rng.gen_range(lo..=hi);
                                let alpha = config.confusion_mix * u;
                                generate_mixed(own, partner, alpha, len, &mut rng)
                            }
                            None => own.generate(len, doc_seed ^ 0x9E3779B97F4A7C15),
                        };
                        Document {
                            language: lang,
                            index,
                            text,
                        }
                    })
            })
            .collect();

        let train_per_lang =
            ((config.docs_per_language as f64) * config.train_fraction).round() as usize;
        let train_per_lang = train_per_lang.max(1).min(config.docs_per_language - 1);

        Self {
            config,
            languages: languages.to_vec(),
            documents,
            train_per_lang,
        }
    }

    /// The generation config.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Languages present.
    pub fn languages(&self) -> &[Language] {
        &self.languages
    }

    /// All documents (train + test), grouped by language in generation order.
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// Number of training documents per language.
    pub fn train_per_language(&self) -> usize {
        self.train_per_lang
    }

    /// The train/test split view.
    pub fn split(&self) -> TrainTestSplit<'_> {
        TrainTestSplit { corpus: self }
    }

    /// Total corpus size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.documents.iter().map(|d| d.len()).sum()
    }
}

impl<'a> TrainTestSplit<'a> {
    /// Training documents for one language (the first `train_fraction` of
    /// each language's documents — index order is generation order, which is
    /// deterministic, so the split is stable).
    pub fn train(&self, lang: Language) -> impl Iterator<Item = &'a Document> {
        let n = self.corpus.train_per_lang;
        self.corpus
            .documents
            .iter()
            .filter(move |d| d.language == lang && d.index < n)
    }

    /// Test documents for one language.
    pub fn test(&self, lang: Language) -> impl Iterator<Item = &'a Document> {
        let n = self.corpus.train_per_lang;
        self.corpus
            .documents
            .iter()
            .filter(move |d| d.language == lang && d.index >= n)
    }

    /// All test documents across languages.
    pub fn test_all(&self) -> impl Iterator<Item = &'a Document> {
        let n = self.corpus.train_per_lang;
        self.corpus.documents.iter().filter(move |d| d.index >= n)
    }

    /// All training documents across languages.
    pub fn train_all(&self) -> impl Iterator<Item = &'a Document> {
        let n = self.corpus.train_per_lang;
        self.corpus.documents.iter().filter(move |d| d.index < n)
    }
}

/// Generate a document in which **exactly** `round(α · segments)` of the
/// ~200-byte segments come from the partner's model, positions shuffled.
///
/// The exact (stratified) count matters: drawing each segment independently
/// would add binomial sampling noise to the document's own/partner ratio
/// that swamps the Bloom false-positive noise the accuracy experiments
/// measure. With a deterministic ratio the per-document match-count margin
/// is `(1 − 2α) · Δ` up to gram-level noise, so margins spread linearly down
/// to zero as α → 0.5 and the filter's false positives become the deciding
/// noise term — the regime of the paper's Table 1.
fn generate_mixed(
    own: &MarkovModel,
    partner: &MarkovModel,
    alpha: f64,
    len: usize,
    rng: &mut SmallRng,
) -> Vec<u8> {
    const SEGMENT: usize = 200;
    let n_segments = len.div_ceil(SEGMENT).max(1);
    let n_partner = (alpha * n_segments as f64).round() as usize;
    // Partial Fisher-Yates over segment indices picks the partner slots.
    let mut slots: Vec<usize> = (0..n_segments).collect();
    for i in 0..n_partner.min(n_segments) {
        let j = rng.gen_range(i..n_segments);
        slots.swap(i, j);
    }
    let partner_slots: std::collections::HashSet<usize> =
        slots[..n_partner.min(n_segments)].iter().copied().collect();

    let mut out = Vec::with_capacity(len + SEGMENT);
    for seg_idx in 0..n_segments {
        let model = if partner_slots.contains(&seg_idx) {
            partner
        } else {
            own
        };
        let seg = model.generate(SEGMENT, rng.gen());
        out.extend_from_slice(&seg);
        out.push(b' ');
    }
    out.truncate(len);
    out
}

fn derive_seed(master: u64, lang: Language, index: usize) -> u64 {
    // SplitMix64-style mixing of (master, language, index).
    let mut z = master
        ^ (lang.index() as u64).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (index as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_expected_shape() {
        let cfg = CorpusConfig::test_scale();
        let c = Corpus::generate(cfg);
        assert_eq!(c.documents().len(), 10 * cfg.docs_per_language);
        assert_eq!(c.languages().len(), 10);
        for &l in &Language::ALL {
            let n = c.documents().iter().filter(|d| d.language == l).count();
            assert_eq!(n, cfg.docs_per_language);
        }
    }

    #[test]
    fn split_respects_fraction_and_is_disjoint() {
        let c = Corpus::generate(CorpusConfig::test_scale());
        let s = c.split();
        for &l in &Language::ALL {
            let train: Vec<usize> = s.train(l).map(|d| d.index).collect();
            let test: Vec<usize> = s.test(l).map(|d| d.index).collect();
            assert_eq!(train.len(), c.train_per_language());
            assert_eq!(train.len() + test.len(), c.config().docs_per_language);
            for i in &train {
                assert!(!test.contains(i));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(CorpusConfig::test_scale());
        let b = Corpus::generate(CorpusConfig::test_scale());
        assert_eq!(a.total_bytes(), b.total_bytes());
        for (da, db) in a.documents().iter().zip(b.documents()) {
            assert_eq!(da.text, db.text);
            assert_eq!(da.language, db.language);
        }
    }

    #[test]
    fn different_seeds_give_different_corpora() {
        let mut cfg = CorpusConfig::test_scale();
        let a = Corpus::generate(cfg);
        cfg.seed ^= 1;
        let b = Corpus::generate(cfg);
        assert_ne!(a.documents()[0].text, b.documents()[0].text);
    }

    #[test]
    fn doc_lengths_within_configured_band() {
        let cfg = CorpusConfig::test_scale();
        let c = Corpus::generate(cfg);
        for d in c.documents() {
            assert!(d.len() >= cfg.mean_doc_bytes / 2);
            assert!(d.len() <= cfg.mean_doc_bytes + cfg.mean_doc_bytes / 2);
        }
    }

    #[test]
    fn subset_generation_works() {
        let cfg = CorpusConfig::test_scale();
        let c = Corpus::generate_for(&[Language::English, Language::French], cfg);
        assert_eq!(c.documents().len(), 2 * cfg.docs_per_language);
    }

    #[test]
    #[should_panic(expected = "at least one language")]
    fn empty_language_list_rejected() {
        let _ = Corpus::generate_for(&[], CorpusConfig::test_scale());
    }

    #[test]
    fn confusable_mixing_changes_test_documents_only() {
        let clean = Corpus::generate_for(&[Language::Spanish], CorpusConfig::test_scale());
        let mut cfg = CorpusConfig::test_scale();
        cfg.confusion_mix = 0.4;
        let mixed = Corpus::generate_for(&[Language::Spanish], cfg);
        let n_train = clean.train_per_language();
        // Training documents stay clean...
        for i in 0..n_train {
            assert_eq!(clean.documents()[i].text, mixed.documents()[i].text);
        }
        // ...while at least one test document differs.
        let changed = (n_train..cfg.docs_per_language)
            .any(|i| clean.documents()[i].text != mixed.documents()[i].text);
        assert!(changed, "mixing should alter test documents");
    }

    #[test]
    fn mixing_leaves_partnerless_languages_untouched() {
        let mut cfg = CorpusConfig::test_scale();
        cfg.confusion_mix = 0.4;
        let mixed = Corpus::generate_for(&[Language::English], cfg);
        cfg.confusion_mix = 0.0;
        let clean = Corpus::generate_for(&[Language::English], cfg);
        for (a, b) in mixed.documents().iter().zip(clean.documents()) {
            assert_eq!(a.text, b.text, "en has no partner; text must not change");
        }
    }

    #[test]
    fn mixing_is_deterministic() {
        let cfg = CorpusConfig::confusable_scale();
        let a = Corpus::generate_for(&[Language::Czech], cfg);
        let b = Corpus::generate_for(&[Language::Czech], cfg);
        for (da, db) in a.documents().iter().zip(b.documents()) {
            assert_eq!(da.text, db.text);
        }
    }

    #[test]
    #[should_panic(expected = "confusion_mix")]
    fn excessive_mix_rejected() {
        let mut cfg = CorpusConfig::test_scale();
        cfg.confusion_mix = 0.6;
        let _ = Corpus::generate(cfg);
    }

    #[test]
    fn train_split_never_empty_or_full() {
        let mut cfg = CorpusConfig::test_scale();
        cfg.docs_per_language = 2;
        cfg.train_fraction = 0.0; // degenerate; clamped to >= 1 doc
        let c = Corpus::generate_for(&[Language::English], cfg);
        assert_eq!(c.train_per_language(), 1);
        assert_eq!(c.split().test(Language::English).count(), 1);
    }
}
