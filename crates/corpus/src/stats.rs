//! Corpus statistics, for reporting experiment setups the way the paper
//! does ("average of 5,700 documents ... average of 1,300 words per
//! document ... average file size of a single language corpus was 48 MB").

use crate::generator::Corpus;
use crate::language::Language;

/// Aggregate statistics of a corpus.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusStats {
    /// Documents per language (language, count, bytes, words).
    pub per_language: Vec<LanguageStats>,
    /// Total documents.
    pub total_documents: usize,
    /// Total bytes.
    pub total_bytes: usize,
}

/// Per-language statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct LanguageStats {
    /// The language.
    pub language: Language,
    /// Number of documents.
    pub documents: usize,
    /// Total bytes across documents.
    pub bytes: usize,
    /// Total (approximate) word count: runs of non-space bytes.
    pub words: usize,
}

impl LanguageStats {
    /// Mean document size in bytes.
    pub fn mean_doc_bytes(&self) -> f64 {
        if self.documents == 0 {
            0.0
        } else {
            self.bytes as f64 / self.documents as f64
        }
    }

    /// Mean words per document.
    pub fn mean_words_per_doc(&self) -> f64 {
        if self.documents == 0 {
            0.0
        } else {
            self.words as f64 / self.documents as f64
        }
    }
}

/// Count words as runs of non-space bytes.
pub fn count_words(text: &[u8]) -> usize {
    let mut words = 0;
    let mut in_word = false;
    for &b in text {
        let is_space = b == b' ' || b == b'\n' || b == b'\t' || b == b'\r';
        if !is_space && !in_word {
            words += 1;
        }
        in_word = !is_space;
    }
    words
}

impl CorpusStats {
    /// Compute statistics for a corpus.
    pub fn of(corpus: &Corpus) -> Self {
        let mut per_language: Vec<LanguageStats> = corpus
            .languages()
            .iter()
            .map(|&language| LanguageStats {
                language,
                documents: 0,
                bytes: 0,
                words: 0,
            })
            .collect();
        for d in corpus.documents() {
            let ls = per_language
                .iter_mut()
                .find(|s| s.language == d.language)
                .expect("document language must be in corpus language list");
            ls.documents += 1;
            ls.bytes += d.len();
            ls.words += count_words(&d.text);
        }
        let total_documents = per_language.iter().map(|s| s.documents).sum();
        let total_bytes = per_language.iter().map(|s| s.bytes).sum();
        Self {
            per_language,
            total_documents,
            total_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorpusConfig;

    #[test]
    fn word_counting() {
        assert_eq!(count_words(b""), 0);
        assert_eq!(count_words(b"   "), 0);
        assert_eq!(count_words(b"one"), 1);
        assert_eq!(count_words(b"one two  three"), 3);
        assert_eq!(count_words(b"  lead trail  "), 2);
    }

    #[test]
    fn stats_are_consistent_with_corpus() {
        let c = Corpus::generate(CorpusConfig::test_scale());
        let s = CorpusStats::of(&c);
        assert_eq!(s.total_documents, c.documents().len());
        assert_eq!(s.total_bytes, c.total_bytes());
        assert_eq!(s.per_language.len(), 10);
        for ls in &s.per_language {
            assert_eq!(ls.documents, c.config().docs_per_language);
            assert!(ls.mean_doc_bytes() > 0.0);
            // Word-like structure: mean word length between 3 and 12 bytes.
            let mean_word = ls.bytes as f64 / ls.words as f64;
            assert!(
                (3.0..12.0).contains(&mean_word),
                "{}: mean word length {mean_word:.1}",
                ls.language
            );
        }
    }
}
