//! The deterministic scheduler behind the shim.
//!
//! One model thread runs at a time; every shared-memory access point
//! (atomic op, spawn, yield, join, finish) is a *scheduling point*. At a
//! point where more than one thread could legally go next, the choice is
//! recorded as a [`Decision`]; repeated executions replay a decision
//! prefix and take the next untried branch, which is exactly a
//! depth-first search over the interleaving tree. Because only one
//! thread is ever runnable and every atomic op sits behind its own
//! scheduling point, the exploration is sequentially consistent and
//! exhaustive (up to the optional preemption bound).

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// A model thread's scheduling state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    /// Parked in `JoinHandle::join` until the given tid finishes.
    Blocked(usize),
    Finished,
}

/// One recorded scheduling decision. Only points that offered a real
/// choice (more than one permitted successor) are recorded; forced moves
/// are recomputed identically on replay.
#[derive(Clone, Copy, Debug)]
struct Decision {
    /// Index into the permitted-choice list that was taken.
    chosen: usize,
    /// Number of permitted choices at this point.
    alts: usize,
    /// The tid that got scheduled (for failure traces).
    tid: usize,
}

struct State {
    threads: Vec<TState>,
    /// The tid currently allowed to run.
    active: usize,
    /// Threads spawned and not yet finished.
    live: usize,
    /// Decision indices to replay (the DFS path into the tree).
    prefix: Vec<usize>,
    cursor: usize,
    trace: Vec<Decision>,
    preemptions: usize,
    preemption_bound: Option<usize>,
    branches: u64,
    max_branches: u64,
    /// Set on panic / deadlock / branch-bound overflow: scheduling turns
    /// into free-running so every thread can unwind and the execution
    /// drains. The first panic payload is kept for the report.
    abort: bool,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One execution's runtime: the scheduler state plus the condvar model
/// threads park on while it is not their turn.
pub(crate) struct Rt {
    st: Mutex<State>,
    cv: Condvar,
    /// Real OS join handles for every model thread spawned this
    /// execution, drained by the controller after the execution ends.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// The scheduler (and this thread's tid in it) when running inside a
    /// model execution; `None` makes every shim op fall back to plain
    /// std behaviour.
    static CUR: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

/// The current thread's scheduler handle, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Rt>, usize)> {
    CUR.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Rt>, usize)>) {
    CUR.with(|c| *c.borrow_mut() = v);
}

/// Scheduling point before a shared-memory access by the calling thread.
/// No-op outside a model execution.
pub(crate) fn branch_point() {
    if let Some((rt, me)) = current() {
        rt.branch(me);
    }
}

impl Rt {
    fn new(prefix: Vec<usize>, preemption_bound: Option<usize>, max_branches: u64) -> Self {
        Self {
            st: Mutex::new(State {
                threads: vec![TState::Runnable],
                active: 0,
                live: 1,
                prefix,
                cursor: 0,
                trace: Vec::new(),
                preemptions: 0,
                preemption_bound,
                branches: 0,
                max_branches,
                abort: false,
                panic: None,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Lock the state, shrugging off poisoning (a panicking model thread
    /// is a *finding*, not a reason to wedge the explorer).
    fn lock(&self) -> MutexGuard<'_, State> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, g: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        self.cv.wait(g).unwrap_or_else(PoisonError::into_inner)
    }

    /// Record the first panic payload and flip the execution into
    /// free-running drain mode.
    fn note_panic(&self, st: &mut State, payload: Box<dyn std::any::Any + Send>) {
        if st.panic.is_none() {
            st.panic = Some(payload);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Pick the next thread to run. `me` is the thread at the scheduling
    /// point; whether it is still a candidate is read off its state.
    /// Must be called with the lock held.
    fn pick_next(&self, st: &mut State, me: usize) {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TState::Runnable)
            .map(|(t, _)| t)
            .collect();
        if runnable.is_empty() {
            if st.live == 0 {
                // Execution over; wake the controller.
                self.cv.notify_all();
                return;
            }
            // Someone is blocked and nobody can run: a real deadlock in
            // the modeled code.
            self.note_panic(
                st,
                Box::new("loom: deadlock — every live model thread is blocked".to_string()),
            );
            return;
        }
        let me_runnable = st.threads.get(me) == Some(&TState::Runnable);
        // Staying on the current thread is free; switching away from a
        // still-runnable thread costs one preemption. Choice 0 is always
        // "no preemption", so the DFS default path is the sequential one.
        let choices: Vec<usize> = if me_runnable {
            let budget_left = st.preemption_bound.is_none_or(|b| st.preemptions < b);
            if budget_left {
                let mut c = vec![me];
                c.extend(runnable.iter().copied().filter(|&t| t != me));
                c
            } else {
                vec![me]
            }
        } else {
            runnable
        };
        let idx = if choices.len() > 1 {
            let idx = if st.cursor < st.prefix.len() {
                st.prefix[st.cursor]
            } else {
                0
            };
            st.cursor += 1;
            if idx >= choices.len() {
                self.note_panic(
                    st,
                    Box::new("loom: replay diverged (non-deterministic model body?)".to_string()),
                );
                return;
            }
            st.trace.push(Decision {
                chosen: idx,
                alts: choices.len(),
                tid: choices[idx],
            });
            idx
        } else {
            0
        };
        let next = choices[idx];
        if me_runnable && next != me {
            st.preemptions += 1;
        }
        st.active = next;
        if next != me {
            self.cv.notify_all();
        }
    }

    /// Scheduling point for thread `me`: maybe hand the token to another
    /// thread, then wait for it to come back.
    fn branch(self: &Arc<Self>, me: usize) {
        let mut st = self.lock();
        if st.abort {
            return;
        }
        st.branches += 1;
        if st.branches > st.max_branches {
            let max = st.max_branches;
            self.note_panic(
                &mut st,
                Box::new(format!(
                    "loom: execution exceeded {max} scheduling points (LOOM_MAX_BRANCHES)"
                )),
            );
            drop(st);
            // Unwind this thread out of the modeled code; the payload
            // recorded above is what the explorer reports.
            panic!("loom: branch bound exceeded");
        }
        self.pick_next(&mut st, me);
        while !st.abort && st.active != me {
            st = self.wait(st);
        }
    }

    /// Mark `me` finished, wake its joiners, hand the token onward.
    fn finish(self: &Arc<Self>, me: usize) {
        let mut st = self.lock();
        st.threads[me] = TState::Finished;
        st.live -= 1;
        for s in st.threads.iter_mut() {
            if *s == TState::Blocked(me) {
                *s = TState::Runnable;
            }
        }
        if st.abort || st.live == 0 {
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st, me);
    }

    /// Register a new model thread; returns its tid.
    fn register(self: &Arc<Self>) -> usize {
        let mut st = self.lock();
        let tid = st.threads.len();
        st.threads.push(TState::Runnable);
        st.live += 1;
        tid
    }

    /// Entry gate for a freshly spawned model thread: wait for its first
    /// turn (or for the execution to flip into drain mode).
    fn wait_first_turn(self: &Arc<Self>, me: usize) {
        let mut st = self.lock();
        while !st.abort && st.active != me {
            st = self.wait(st);
        }
    }
}

/// Spawn a model thread when called from inside an execution; plain
/// `std::thread::spawn` otherwise.
pub(crate) fn spawn<F, T>(f: F) -> crate::thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some((rt, me)) = current() else {
        return crate::thread::JoinHandle::std(std::thread::spawn(f));
    };
    let tid = rt.register();
    let slot: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let (rt2, slot2) = (Arc::clone(&rt), Arc::clone(&slot));
    let real = std::thread::spawn(move || {
        set_current(Some((Arc::clone(&rt2), tid)));
        rt2.wait_first_turn(tid);
        match panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => {
                *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
            }
            Err(payload) => {
                // The real payload goes to the explorer's report; the
                // joiner (if any) gets a placeholder.
                let mut st = rt2.lock();
                rt2.note_panic(&mut st, payload);
                drop(st);
                *slot2.lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(Err(Box::new("loom: model thread panicked".to_string())));
            }
        }
        rt2.finish(tid);
        set_current(None);
    });
    rt.handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(real);
    // Scheduling point: the child is runnable from here on.
    rt.branch(me);
    crate::thread::JoinHandle::model(rt, tid, slot)
}

/// Join a model thread: block (as a scheduler state, not an OS wait)
/// until the target finishes, then take its result.
pub(crate) fn join<T>(
    rt: Arc<Rt>,
    tid: usize,
    slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
) -> std::thread::Result<T> {
    if let Some((_, me)) = current() {
        let mut st = rt.lock();
        if st.threads[tid] != TState::Finished && !st.abort {
            st.threads[me] = TState::Blocked(tid);
            rt.pick_next(&mut st, me);
            while !(st.abort || st.threads[me] == TState::Runnable && st.active == me) {
                st = rt.wait(st);
            }
        }
        // Under drain mode the target free-runs to completion; wait for
        // it so the result slot is filled either way.
        while st.threads[tid] != TState::Finished {
            st = rt.wait(st);
        }
        drop(st);
    } else {
        // Joining from outside the model (not expected, but harmless).
        let mut st = rt.lock();
        while st.threads[tid] != TState::Finished {
            st = rt.wait(st);
        }
    }
    slot.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
        .expect("loom: finished model thread left no result")
}

/// Run `f` under every schedule the bounded DFS reaches. Returns the
/// number of complete executions explored; panics (re-raising the model
/// thread's payload, after printing the schedule trace) on the first
/// property violation.
pub(crate) fn explore<F>(preemption_bound: Option<usize>, max_branches: u64, f: Arc<F>) -> u64
where
    F: Fn() + Send + Sync + 'static,
{
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        let rt = Arc::new(Rt::new(prefix.clone(), preemption_bound, max_branches));
        let (rt2, froot) = (Arc::clone(&rt), Arc::clone(&f));
        let root = std::thread::spawn(move || {
            set_current(Some((Arc::clone(&rt2), 0)));
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(|| froot())) {
                let mut st = rt2.lock();
                rt2.note_panic(&mut st, p);
            }
            rt2.finish(0);
            set_current(None);
        });
        {
            let mut st = rt.lock();
            while st.live > 0 {
                st = rt.wait(st);
            }
        }
        let _ = root.join();
        for h in rt
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            let _ = h.join();
        }
        let (payload, schedule, next) = {
            let mut st = rt.lock();
            let payload = st.panic.take();
            let schedule: Vec<usize> = st.trace.iter().map(|d| d.tid).collect();
            // DFS step: drop exhausted trailing decisions, bump the
            // deepest one that still has an untried branch.
            let mut t = std::mem::take(&mut st.trace);
            while let Some(d) = t.last() {
                if d.chosen + 1 < d.alts {
                    break;
                }
                t.pop();
            }
            let next = if t.is_empty() {
                None
            } else {
                let last = t.len() - 1;
                t[last].chosen += 1;
                Some(t.iter().map(|d| d.chosen).collect::<Vec<usize>>())
            };
            (payload, schedule, next)
        };
        if let Some(p) = payload {
            eprintln!(
                "loom: property violated on schedule #{executions}; \
                 decision trace (tid per choice point): {schedule:?}"
            );
            panic::resume_unwind(p);
        }
        match next {
            Some(p) => prefix = p,
            None => break,
        }
    }
    eprintln!("loom: explored {executions} complete schedules");
    executions
}
