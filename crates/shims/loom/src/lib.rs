//! Offline stand-in for the subset of [`loom`](https://docs.rs/loom)
//! this workspace uses: a deterministic, exhaustive-up-to-bounds model
//! checker for code written against `std::sync::atomic`.
//!
//! [`model`] runs a closure under every thread interleaving a bounded
//! depth-first search can reach, one schedule per execution. Each
//! atomic operation (and each spawn/join/yield) is a scheduling point;
//! only one model thread runs at a time, so the exploration is exactly
//! the set of **sequentially consistent** interleavings of those
//! operations. Differences from real loom, by design:
//!
//! * **SC-only exploration.** Every ordering is strengthened to
//!   `SeqCst` inside the model. Bugs that *require* a weaker-than-SC
//!   reordering to manifest (e.g. store buffering visible only under
//!   real `Relaxed`) are out of scope; bugs expressible as an unlucky
//!   SC interleaving — lost updates, torn multi-word protocols, lost
//!   wakeups, inverted read orders — are found exhaustively.
//! * **Torn multi-word reads are modeled naturally**: a two-word record
//!   written as two atomic stores can be interrupted between the words
//!   by any other thread, because each word access is its own
//!   scheduling point. Single-word accesses are never torn (same
//!   guarantee the hardware gives).
//! * No `UnsafeCell`/`Mutex`/`Notify` modeling — atomics, `Arc`,
//!   `thread::spawn/join/yield_now` only.
//!
//! Exploration bounds (also settable via [`model::Builder`]):
//!
//! * `LOOM_MAX_PREEMPTIONS` — max *involuntary* context switches per
//!   execution (a switch away from a thread that could have continued).
//!   Unset means unbounded, i.e. a complete SC exploration. Small
//!   bounds (1–3) catch almost all real bugs while taming the
//!   combinatorial explosion on long op sequences.
//! * `LOOM_MAX_BRANCHES` — max scheduling points in one execution
//!   (default 50 000); exceeding it fails the test, catching accidental
//!   unbounded loops inside a model.
//!
//! On a property violation the explorer prints the schedule (the tid
//! chosen at each decision point) before re-raising the panic, so a
//! failing interleaving can be read off the test output. Outside
//! [`model`] every shim type degrades to plain `std` behaviour, so code
//! compiled against the facade still runs normally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rt;

/// Configure and run a model exploration.
pub mod model {
    /// Exploration configuration: defaults come from the environment
    /// (`LOOM_MAX_PREEMPTIONS`, `LOOM_MAX_BRANCHES`), fields can be
    /// overridden per test.
    #[derive(Clone, Debug)]
    pub struct Builder {
        /// Max involuntary context switches per execution; `None` means
        /// unbounded (complete SC exploration).
        pub preemption_bound: Option<usize>,
        /// Max scheduling points per execution before the run is failed
        /// as divergent.
        pub max_branches: u64,
    }

    impl Builder {
        /// A builder seeded from the environment.
        pub fn new() -> Self {
            Self {
                preemption_bound: std::env::var("LOOM_MAX_PREEMPTIONS")
                    .ok()
                    .and_then(|v| v.parse().ok()),
                max_branches: std::env::var("LOOM_MAX_BRANCHES")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(50_000),
            }
        }

        /// Explore `f` under every schedule within the bounds. Returns
        /// the number of complete schedules explored; panics with the
        /// failing schedule's trace on the first property violation.
        pub fn check<F>(&self, f: F) -> u64
        where
            F: Fn() + Send + Sync + 'static,
        {
            crate::rt::explore(
                self.preemption_bound,
                self.max_branches,
                std::sync::Arc::new(f),
            )
        }
    }

    impl Default for Builder {
        fn default() -> Self {
            Self::new()
        }
    }
}

/// Explore `f` under every thread interleaving the (env-configured)
/// bounded DFS reaches. Returns the number of complete schedules
/// explored and prints it; panics — after printing the schedule trace —
/// on the first property violation.
pub fn model<F>(f: F) -> u64
where
    F: Fn() + Send + Sync + 'static,
{
    model::Builder::new().check(f)
}

/// Model-aware replacements for `std::thread`.
pub mod thread {
    use std::sync::{Arc, Mutex};

    enum Imp<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            rt: Arc<crate::rt::Rt>,
            tid: usize,
            slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
        },
    }

    /// Handle to a spawned (model or real) thread.
    pub struct JoinHandle<T>(Imp<T>);

    impl<T> JoinHandle<T> {
        pub(crate) fn std(h: std::thread::JoinHandle<T>) -> Self {
            Self(Imp::Std(h))
        }

        pub(crate) fn model(
            rt: Arc<crate::rt::Rt>,
            tid: usize,
            slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
        ) -> Self {
            Self(Imp::Model { rt, tid, slot })
        }

        /// Wait for the thread to finish and take its result. Inside a
        /// model this is a scheduler-level block, not an OS wait.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Imp::Std(h) => h.join(),
                Imp::Model { rt, tid, slot } => crate::rt::join(rt, tid, slot),
            }
        }
    }

    /// Spawn a model thread (a real thread outside [`crate::model`]).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        crate::rt::spawn(f)
    }

    /// A pure scheduling point: let any other thread run here.
    pub fn yield_now() {
        crate::rt::branch_point();
    }
}

/// Model-aware replacements for `std::sync`.
pub mod sync {
    pub use std::sync::Arc;

    /// Atomics whose every access is a scheduling point inside a model.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;
        use std::sync::atomic::Ordering::SeqCst;

        /// A `u64` atomic; every access is a model scheduling point.
        #[derive(Debug, Default)]
        pub struct AtomicU64(std::sync::atomic::AtomicU64);

        impl AtomicU64 {
            /// A new atomic holding `v`.
            pub const fn new(v: u64) -> Self {
                Self(std::sync::atomic::AtomicU64::new(v))
            }

            /// Atomic load (modeled as `SeqCst`).
            pub fn load(&self, _order: Ordering) -> u64 {
                crate::rt::branch_point();
                self.0.load(SeqCst)
            }

            /// Atomic store (modeled as `SeqCst`).
            pub fn store(&self, v: u64, _order: Ordering) {
                crate::rt::branch_point();
                self.0.store(v, SeqCst)
            }

            /// Atomic swap (modeled as `SeqCst`).
            pub fn swap(&self, v: u64, _order: Ordering) -> u64 {
                crate::rt::branch_point();
                self.0.swap(v, SeqCst)
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: u64, _order: Ordering) -> u64 {
                crate::rt::branch_point();
                self.0.fetch_add(v, SeqCst)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: u64, _order: Ordering) -> u64 {
                crate::rt::branch_point();
                self.0.fetch_sub(v, SeqCst)
            }

            /// Atomic max, returning the previous value.
            pub fn fetch_max(&self, v: u64, _order: Ordering) -> u64 {
                crate::rt::branch_point();
                self.0.fetch_max(v, SeqCst)
            }

            /// Atomic min, returning the previous value.
            pub fn fetch_min(&self, v: u64, _order: Ordering) -> u64 {
                crate::rt::branch_point();
                self.0.fetch_min(v, SeqCst)
            }

            /// Atomic bitwise or, returning the previous value.
            pub fn fetch_or(&self, v: u64, _order: Ordering) -> u64 {
                crate::rt::branch_point();
                self.0.fetch_or(v, SeqCst)
            }

            /// Atomic compare-exchange (modeled as `SeqCst`/`SeqCst`).
            pub fn compare_exchange(
                &self,
                current: u64,
                new: u64,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<u64, u64> {
                crate::rt::branch_point();
                self.0.compare_exchange(current, new, SeqCst, SeqCst)
            }

            /// Weak compare-exchange (never fails spuriously here).
            pub fn compare_exchange_weak(
                &self,
                current: u64,
                new: u64,
                success: Ordering,
                failure: Ordering,
            ) -> Result<u64, u64> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Consume the atomic, returning the value.
            pub fn into_inner(self) -> u64 {
                self.0.into_inner()
            }
        }

        /// A `usize` atomic; every access is a model scheduling point.
        #[derive(Debug, Default)]
        pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

        impl AtomicUsize {
            /// A new atomic holding `v`.
            pub const fn new(v: usize) -> Self {
                Self(std::sync::atomic::AtomicUsize::new(v))
            }

            /// Atomic load (modeled as `SeqCst`).
            pub fn load(&self, _order: Ordering) -> usize {
                crate::rt::branch_point();
                self.0.load(SeqCst)
            }

            /// Atomic store (modeled as `SeqCst`).
            pub fn store(&self, v: usize, _order: Ordering) {
                crate::rt::branch_point();
                self.0.store(v, SeqCst)
            }

            /// Atomic swap (modeled as `SeqCst`).
            pub fn swap(&self, v: usize, _order: Ordering) -> usize {
                crate::rt::branch_point();
                self.0.swap(v, SeqCst)
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
                crate::rt::branch_point();
                self.0.fetch_add(v, SeqCst)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: usize, _order: Ordering) -> usize {
                crate::rt::branch_point();
                self.0.fetch_sub(v, SeqCst)
            }

            /// Atomic max, returning the previous value.
            pub fn fetch_max(&self, v: usize, _order: Ordering) -> usize {
                crate::rt::branch_point();
                self.0.fetch_max(v, SeqCst)
            }

            /// Atomic compare-exchange (modeled as `SeqCst`/`SeqCst`).
            pub fn compare_exchange(
                &self,
                current: usize,
                new: usize,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<usize, usize> {
                crate::rt::branch_point();
                self.0.compare_exchange(current, new, SeqCst, SeqCst)
            }

            /// Consume the atomic, returning the value.
            pub fn into_inner(self) -> usize {
                self.0.into_inner()
            }
        }

        /// A `bool` atomic; every access is a model scheduling point.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// A new atomic holding `v`.
            pub const fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Atomic load (modeled as `SeqCst`).
            pub fn load(&self, _order: Ordering) -> bool {
                crate::rt::branch_point();
                self.0.load(SeqCst)
            }

            /// Atomic store (modeled as `SeqCst`).
            pub fn store(&self, v: bool, _order: Ordering) {
                crate::rt::branch_point();
                self.0.store(v, SeqCst)
            }

            /// Atomic swap (modeled as `SeqCst`).
            pub fn swap(&self, v: bool, _order: Ordering) -> bool {
                crate::rt::branch_point();
                self.0.swap(v, SeqCst)
            }

            /// Atomic bitwise or, returning the previous value.
            pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
                crate::rt::branch_point();
                self.0.fetch_or(v, SeqCst)
            }

            /// Atomic bitwise and, returning the previous value.
            pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
                crate::rt::branch_point();
                self.0.fetch_and(v, SeqCst)
            }

            /// Atomic compare-exchange (modeled as `SeqCst`/`SeqCst`).
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<bool, bool> {
                crate::rt::branch_point();
                self.0.compare_exchange(current, new, SeqCst, SeqCst)
            }

            /// Consume the atomic, returning the value.
            pub fn into_inner(self) -> bool {
                self.0.into_inner()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Arc;
    use std::collections::HashSet;
    use std::sync::Mutex;

    /// Two racing load-then-store increments: the model must find the
    /// schedule where one update is lost.
    #[test]
    fn model_finds_the_lost_update() {
        let caught = std::panic::catch_unwind(|| {
            super::model(|| {
                let n = Arc::new(AtomicU64::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = Arc::clone(&n);
                        super::thread::spawn(move || {
                            let v = n.load(Ordering::Relaxed);
                            n.store(v + 1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(n.load(Ordering::Relaxed), 2, "an increment was lost");
            });
        });
        assert!(caught.is_err(), "the lost-update schedule was not explored");
    }

    /// The same race written with `fetch_add` survives every schedule,
    /// and the exploration visits more than one interleaving.
    #[test]
    fn fetch_add_survives_every_schedule() {
        let schedules = super::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                        n.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Relaxed), 4);
        });
        assert!(
            schedules >= 6,
            "expected ≥ 6 interleavings, saw {schedules}"
        );
    }

    /// A two-word write observed by a racing two-word read: the
    /// exploration must reach the torn observation (first word written,
    /// second not yet) as well as both untorn ones.
    #[test]
    fn torn_two_word_read_is_reachable() {
        let seen: Arc<Mutex<HashSet<(u64, u64)>>> = Arc::new(Mutex::new(HashSet::new()));
        let seen2 = Arc::clone(&seen);
        super::model(move || {
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::new(AtomicU64::new(0));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let w = super::thread::spawn(move || {
                a2.store(1, Ordering::Relaxed);
                b2.store(1, Ordering::Relaxed);
            });
            let ra = a.load(Ordering::Relaxed);
            let rb = b.load(Ordering::Relaxed);
            seen2.lock().unwrap().insert((ra, rb));
            w.join().unwrap();
        });
        let seen = seen.lock().unwrap();
        assert!(seen.contains(&(0, 0)), "read-before-write schedule missing");
        assert!(seen.contains(&(1, 1)), "read-after-write schedule missing");
        assert!(seen.contains(&(1, 0)), "torn observation missing: {seen:?}");
    }

    /// A preemption bound of zero leaves only the voluntary switches
    /// (thread finish / join), so far fewer schedules run.
    #[test]
    fn preemption_bound_prunes_the_tree() {
        let run = |bound: Option<usize>| {
            let mut b = super::model::Builder::new();
            b.preemption_bound = bound;
            b.check(|| {
                let n = Arc::new(AtomicU64::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = Arc::clone(&n);
                        super::thread::spawn(move || {
                            n.fetch_add(1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            })
        };
        let bounded = run(Some(0));
        let free = run(None);
        assert!(
            bounded < free,
            "bound 0 should prune schedules: {bounded} !< {free}"
        );
    }

    /// The branch bound catches a model that never quiesces.
    #[test]
    fn branch_bound_fails_runaway_models() {
        let caught = std::panic::catch_unwind(|| {
            let mut b = super::model::Builder::new();
            b.max_branches = 100;
            b.check(|| {
                let n = AtomicU64::new(0);
                loop {
                    if n.fetch_add(1, Ordering::Relaxed) > 1_000_000 {
                        break;
                    }
                }
            });
        });
        assert!(caught.is_err(), "runaway model was not bounded");
    }

    /// Outside `model()` the shim degrades to plain std behaviour.
    #[test]
    fn works_without_a_scheduler() {
        let n = Arc::new(AtomicU64::new(7));
        let n2 = Arc::clone(&n);
        let h = super::thread::spawn(move || n2.fetch_add(1, Ordering::SeqCst));
        assert_eq!(h.join().unwrap(), 7);
        assert_eq!(n.load(Ordering::SeqCst), 8);
        super::thread::yield_now();
    }
}
