//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses: the [`proptest!`] test macro, `prop_assert*` macros, [`any`],
//! integer-range strategies, and [`collection::vec`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the sampled inputs verbatim;
//!   re-run with `PROPTEST_SEED` to reproduce exactly.
//! * **Fixed-seed deterministic runs.** Each test function derives its RNG
//!   seed from its own name, so failures are reproducible by default and CI
//!   runs are stable. Set `PROPTEST_SEED` to explore a different stream and
//!   `PROPTEST_CASES` to change the per-test case count (default 256).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// A deterministic sample source handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded source.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = span.wrapping_mul(u64::MAX / span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}

/// A value generator. The shim strategy is just "sample uniformly"; there is
/// no shrinking tree.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Derived strategy applying `f` to every sampled value. No shrinking
    /// (the shim never shrinks), otherwise matches real proptest.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy backed by a sampling closure; the expansion target of
/// [`prop_compose!`].
pub struct SampleFn<T, F: Fn(&mut TestRng) -> T>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for SampleFn<T, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Composite-strategy macro mirroring proptest's `prop_compose!`: defines a
/// function returning a strategy that samples each listed sub-strategy and
/// builds the result from the body. One parameter-list form only (no
/// two-stage `(args)(more args)` dependency chaining beyond the standard
/// params-then-strategies shape).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::SampleFn(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Strategy for "any value of a primitive type"; see [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Uniform strategy over the full domain of a primitive type.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span) as $t)
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<char> {
    type Value = char;

    fn sample(&self, rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                return c;
            }
        }
    }
}

/// Constant strategy (always yields a clone of the value).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Tuples of strategies sample componentwise (matching real proptest), so
/// `(0usize..100, any::<u8>())` yields `(usize, u8)` pairs.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification for [`vec`]: exact, `lo..hi`, or `lo..=hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// A non-panicking test-case failure, produced by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Create a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-block configuration, set via `#![proptest_config(...)]` inside a
/// [`proptest!`] invocation.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases to run per test.
    pub cases: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u64) -> Self {
        Self { cases }
    }
}

/// Number of cases each `proptest!` test runs by default (env
/// `PROPTEST_CASES` overrides).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Driver used by the [`proptest!`] expansion: runs `f` for the configured
/// number of iterations with a deterministic per-test RNG, reporting sampled
/// inputs on failure (no shrinking). `PROPTEST_CASES` overrides `config`.
pub fn run_cases<F>(test_name: &str, config: ProptestConfig, mut f: F)
where
    F: FnMut(&mut TestRng) -> (String, std::thread::Result<Result<(), TestCaseError>>),
{
    // Seed derives from the test name (FNV-1a) so each test explores its own
    // stream but reruns are reproducible; PROPTEST_SEED overrides.
    let mut seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xcbf2_9ce4_8422_2325u64);
    for b in test_name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = TestRng::new(seed);
    let total = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    for case in 0..total {
        let (inputs, outcome) = f(&mut rng);
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "proptest case {case}/{total} failed: {e}\n  inputs: {inputs}\n  (seed {seed:#x}; set PROPTEST_SEED to reproduce)"
            ),
            Err(payload) => {
                eprintln!(
                    "proptest case {case}/{total} panicked\n  inputs: {inputs}\n  (seed {seed:#x}; set PROPTEST_SEED to reproduce)"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Property-test macro: `proptest! { #[test] fn name(x in strategy, ...) { body } }`.
///
/// Each listed function becomes a plain `#[test]` that samples its arguments
/// from the given strategies for [`cases`] iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)+ }
    };
    ($($rest:tt)+) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)+ }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), $cfg, |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  ",)+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::core::result::Result<(), $crate::TestCaseError> {
                                $body
                                ::core::result::Result::Ok(())
                            },
                        ),
                    );
                    (inputs, outcome)
                });
            }
        )+
    };
}

/// Fail the test case unless `cond` holds (non-panicking: returns `Err` from
/// the enclosing proptest body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fail the test case unless the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 5usize..=5, v in crate::collection::vec(any::<u8>(), 2..4)) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, 5);
            prop_assert!(v.len() == 2 || v.len() == 3);
        }

        #[test]
        fn just_yields_constant(v in Just(41u8)) {
            prop_assert_eq!(v, 41u8);
        }
    }

    #[test]
    #[should_panic(expected = "inputs")]
    fn failing_case_reports_inputs() {
        crate::run_cases(
            "failing_case_reports_inputs",
            crate::ProptestConfig::default(),
            |rng| {
                let x = Strategy::sample(&(0u8..10), rng);
                let inputs = format!("x = {x:?}");
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> Result<(), TestCaseError> {
                        crate::prop_assert!(x > 100, "x too small: {}", x);
                        Ok(())
                    },
                ));
                (inputs, outcome)
            },
        );
    }
}
