//! Offline stand-in for the subset of the `rayon` crate this workspace uses.
//!
//! The build environment has no registry access, so this shim provides the
//! `par_iter()` / `into_par_iter()` adapter surface the workspace calls —
//! executed **sequentially**. Results are bit-identical to real rayon (the
//! workspace's parallel paths are all order-preserving and side-effect free);
//! only wall-clock parallelism is lost. Swapping the real crate back in is a
//! one-line manifest change, which is why the API mirrors rayon exactly.
//!
//! ROADMAP has an open item to give this shim a real work-stealing pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The adapter and consumer surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// A "parallel" iterator: a sequential iterator with rayon's adapter names.
#[derive(Clone, Debug)]
pub struct ParallelIterator<I> {
    inner: I,
}

impl<I: Iterator> ParallelIterator<I> {
    /// Map each item.
    pub fn map<F, R>(self, f: F) -> ParallelIterator<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParallelIterator {
            inner: self.inner.map(f),
        }
    }

    /// Keep items matching the predicate.
    pub fn filter<P>(self, p: P) -> ParallelIterator<std::iter::Filter<I, P>>
    where
        P: FnMut(&I::Item) -> bool,
    {
        ParallelIterator {
            inner: self.inner.filter(p),
        }
    }

    /// Map each item to a nested parallel iterator and flatten.
    pub fn flat_map<F, J>(
        self,
        f: F,
    ) -> ParallelIterator<std::iter::FlatMap<I, ParallelIterator<J>, F>>
    where
        F: FnMut(I::Item) -> ParallelIterator<J>,
        J: Iterator,
    {
        ParallelIterator {
            inner: self.inner.flat_map(f),
        }
    }

    /// Collect into any `FromIterator` container (input order preserved).
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.inner.count()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    /// Run a function on each item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.inner.for_each(f)
    }
}

impl<I: Iterator> IntoIterator for ParallelIterator<I> {
    type Item = I::Item;
    type IntoIter = I;

    fn into_iter(self) -> I {
        self.inner
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The wrapped sequential iterator type.
    type Iter: Iterator;

    /// Borrowing "parallel" iterator.
    fn par_iter(&'a self) -> ParallelIterator<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParallelIterator<Self::Iter> {
        ParallelIterator { inner: self.iter() }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParallelIterator<Self::Iter> {
        ParallelIterator { inner: self.iter() }
    }
}

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// The wrapped sequential iterator type.
    type Iter: Iterator;

    /// Consuming "parallel" iterator.
    fn into_par_iter(self) -> ParallelIterator<Self::Iter>;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = Range<usize>;

    fn into_par_iter(self) -> ParallelIterator<Self::Iter> {
        ParallelIterator { inner: self }
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> ParallelIterator<Self::Iter> {
        ParallelIterator {
            inner: self.into_iter(),
        }
    }
}

/// Number of threads the "pool" would use (reports hardware parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`. Thread count is recorded but
/// execution is sequential.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a thread count (recorded only).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, BuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                current_num_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// Error type for pool construction (never produced by the shim).
#[derive(Debug)]
pub struct BuildError;

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for BuildError {}

/// A "thread pool": runs closures on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` "inside" the pool.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v = vec![1, 2, 3, 4];
        let out: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, vec![2, 4, 6, 8]);
    }

    #[test]
    fn filter_count_and_flat_map() {
        let n = (0..10usize).into_par_iter().filter(|x| x % 2 == 0).count();
        assert_eq!(n, 5);
        let v: Vec<usize> = vec![1usize, 2]
            .par_iter()
            .flat_map(|&base| (0..base).into_par_iter().map(move |i| base * 10 + i))
            .collect();
        assert_eq!(v, vec![10, 20, 21]);
    }

    #[test]
    fn pool_installs() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
        assert_eq!(pool.current_num_threads(), 1);
    }
}
