//! Offline stand-in for the subset of the `rayon` crate this workspace uses.
//!
//! The build environment has no registry access, so this shim provides the
//! `par_iter()` / `into_par_iter()` adapter surface the workspace calls.
//! Unlike real rayon's lazy work-stealing, execution here is **eager
//! fixed-chunk parallelism**: `map`, `filter`, and `flat_map` materialize
//! their input, split it into one contiguous chunk per available core, and
//! run the closure on scoped threads, reassembling results in input order.
//! Results are bit-identical to real rayon (the workspace's parallel paths
//! are all order-preserving and side-effect free); only the scheduling
//! strategy differs. Swapping the real crate back in is a one-line manifest
//! change, which is why the API mirrors rayon (closures take rayon's
//! `Fn + Sync` bounds).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;

/// The adapter and consumer surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn effective_threads() -> usize {
    POOL_THREADS
        .with(|t| t.get())
        .unwrap_or_else(current_num_threads)
        .max(1)
}

/// Apply `f` to every item on a fixed-chunk scoped-thread pool, preserving
/// input order. Falls back to the calling thread for trivial inputs or a
/// single-thread pool.
fn run_chunked<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = effective_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::new();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// A parallel iterator: adapters run eagerly on the chunked pool; the
/// already-computed results are then consumed sequentially.
#[derive(Clone, Debug)]
pub struct ParallelIterator<I> {
    inner: I,
}

impl<I: Iterator> ParallelIterator<I> {
    /// Map each item, in parallel across fixed chunks.
    pub fn map<F, R>(self, f: F) -> ParallelIterator<std::vec::IntoIter<R>>
    where
        F: Fn(I::Item) -> R + Sync,
        I::Item: Send,
        R: Send,
    {
        let items: Vec<I::Item> = self.inner.collect();
        ParallelIterator {
            inner: run_chunked(items, f).into_iter(),
        }
    }

    /// Keep items matching the predicate; the predicate runs in parallel.
    pub fn filter<P>(self, p: P) -> ParallelIterator<std::vec::IntoIter<I::Item>>
    where
        P: Fn(&I::Item) -> bool + Sync,
        I::Item: Send,
    {
        let items: Vec<I::Item> = self.inner.collect();
        let kept: Vec<Option<I::Item>> =
            run_chunked(items, |item| if p(&item) { Some(item) } else { None });
        ParallelIterator {
            inner: kept.into_iter().flatten().collect::<Vec<_>>().into_iter(),
        }
    }

    /// Map each item to a nested parallel iterator and flatten, preserving
    /// order. The outer closure runs in parallel.
    pub fn flat_map<F, J>(self, f: F) -> ParallelIterator<std::vec::IntoIter<J::Item>>
    where
        F: Fn(I::Item) -> ParallelIterator<J> + Sync,
        J: Iterator,
        I::Item: Send,
        J::Item: Send,
    {
        let items: Vec<I::Item> = self.inner.collect();
        let nested: Vec<Vec<J::Item>> = run_chunked(items, |item| f(item).inner.collect());
        ParallelIterator {
            inner: nested.into_iter().flatten().collect::<Vec<_>>().into_iter(),
        }
    }

    /// Collect into any `FromIterator` container (input order preserved).
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.inner.count()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    /// Run a function on each item, in parallel across fixed chunks.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I::Item) + Sync,
        I::Item: Send,
    {
        let items: Vec<I::Item> = self.inner.collect();
        run_chunked(items, f);
    }
}

impl<I: Iterator> IntoIterator for ParallelIterator<I> {
    type Item = I::Item;
    type IntoIter = I;

    fn into_iter(self) -> I {
        self.inner
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The wrapped sequential iterator type.
    type Iter: Iterator;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParallelIterator<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParallelIterator<Self::Iter> {
        ParallelIterator { inner: self.iter() }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParallelIterator<Self::Iter> {
        ParallelIterator { inner: self.iter() }
    }
}

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// The wrapped sequential iterator type.
    type Iter: Iterator;

    /// Consuming parallel iterator.
    fn into_par_iter(self) -> ParallelIterator<Self::Iter>;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = Range<usize>;

    fn into_par_iter(self) -> ParallelIterator<Self::Iter> {
        ParallelIterator { inner: self }
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> ParallelIterator<Self::Iter> {
        ParallelIterator {
            inner: self.into_iter(),
        }
    }
}

/// Number of threads the pool uses by default (hardware parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a thread count (0 = hardware parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, BuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                current_num_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// Error type for pool construction (never produced by the shim).
#[derive(Debug)]
pub struct BuildError;

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for BuildError {}

/// A thread pool with a fixed chunk count. `install` makes parallel
/// adapters called inside `op` split work into this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` inside the pool: parallel adapters on the calling thread
    /// use this pool's thread count while `op` runs.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(Some(self.num_threads)));
        let result = op();
        POOL_THREADS.with(|t| t.set(prev));
        result
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v = vec![1, 2, 3, 4];
        let out: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, vec![2, 4, 6, 8]);
    }

    #[test]
    fn large_map_preserves_order_across_chunks() {
        let v: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 3).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..4096).collect();
        let _: Vec<usize> = v
            .par_iter()
            .map(|&x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                x
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(threads > 1, "expected parallel execution, saw {threads}");
        }
    }

    #[test]
    fn filter_count_and_flat_map() {
        let n = (0..10usize).into_par_iter().filter(|x| x % 2 == 0).count();
        assert_eq!(n, 5);
        let v: Vec<usize> = vec![1usize, 2]
            .par_iter()
            .flat_map(|&base| (0..base).into_par_iter().map(move |i| base * 10 + i))
            .collect();
        assert_eq!(v, vec![10, 20, 21]);
    }

    #[test]
    fn for_each_visits_everything() {
        let hits = AtomicUsize::new(0);
        (0..257usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn pool_installs_and_pins_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        let out: Vec<usize> = pool.install(|| {
            let v: Vec<usize> = (0..100).collect();
            v.par_iter().map(|&x| x + 1).collect()
        });
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }
}
