//! Offline stand-in for the subset of `crossbeam-channel` this workspace
//! uses: [`bounded`] MPSC channels with blocking `send`/`recv` and receiver
//! iteration. Backed by `std::sync::mpsc::sync_channel`, which provides the
//! same bounded-buffer blocking semantics for the single-producer
//! single-consumer pipelines the FPGA system simulator builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use std::sync::mpsc::{Receiver, SendError, SyncSender as Sender};

/// Create a bounded channel with capacity `cap`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::sync_channel(cap)
}

#[cfg(test)]
mod tests {
    use super::bounded;

    #[test]
    fn pipeline_roundtrip() {
        let (tx, rx) = bounded::<usize>(4);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..32 {
                    tx.send(i).expect("receiver alive");
                }
            });
            let got: Vec<usize> = rx.iter().collect();
            assert_eq!(got, (0..32).collect::<Vec<_>>());
        });
    }
}
