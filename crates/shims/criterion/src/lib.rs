//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses: benchmark groups, `bench_function`, byte/element throughput, and the
//! `criterion_group!` / `criterion_main!` entry points.
//!
//! Measurement model: each benchmark warms up briefly, then runs timed
//! batches until both a minimum duration and a minimum sample count are
//! reached, and reports the median per-iteration time (median over batch
//! means) plus derived throughput. No plots, no statistics files — results
//! go to stdout, one line per benchmark, machine-greppable:
//!
//! ```text
//! bench <group>/<name> median_ns <n> mb_per_s <x> elem_per_s <y>
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the work per iteration, enabling throughput reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Number of timed samples to collect (minimum 5 in the shim).
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(5);
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl AsRef<str>, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        let median_ns = b.median_ns();
        let mut line = format!(
            "bench {}/{} median_ns {:.1}",
            self.name,
            id.as_ref(),
            median_ns
        );
        if median_ns > 0.0 {
            match self.throughput {
                Some(Throughput::Bytes(n)) => {
                    line.push_str(&format!(" mb_per_s {:.1}", n as f64 * 1e3 / median_ns));
                }
                Some(Throughput::Elements(n)) => {
                    line.push_str(&format!(" elem_per_s {:.0}", n as f64 * 1e9 / median_ns));
                }
                None => {}
            }
        }
        println!("{line}");
    }

    /// End the group (marker only in the shim).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    target_samples: usize,
}

impl Bencher {
    /// Measure `f`, called repeatedly. Warm-up iterations are discarded, then
    /// `sample_size` timed samples are collected (each a mean over enough
    /// iterations to exceed ~5 ms of wall clock).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up and batch-size calibration: grow until one batch >= 5 ms.
        let mut batch = 1u64;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= (1 << 24) {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch *= 2;
        };
        // Keep total time bounded: cap timed samples so a slow benchmark
        // (~seconds per iteration) still finishes.
        let budget_ns = 2e9;
        let affordable = (budget_ns / (per_iter_ns * batch as f64)).ceil() as usize;
        let samples = self.target_samples.min(affordable.max(3));
        self.samples_ns.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let mut v = self.samples_ns.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }
}

/// Define a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(5);
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        g.finish();
        assert!(ran);
    }
}
