//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to a crates.io registry, so external
//! dependencies are provided as local shims (see `crates/shims/README.md`).
//! This one covers exactly the surface the workspace calls:
//!
//! * [`rngs::SmallRng`] — a small, fast, deterministic PRNG
//!   (xoshiro256++, the same algorithm family real `rand` 0.8 uses for
//!   `SmallRng` on 64-bit targets),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`] for the primitive integer types,
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges.
//!
//! Determinism matters more than matching upstream `rand` bit-for-bit: all
//! seeds in the workspace produce stable streams across runs and platforms,
//! which is what the corpus generator and the statistical tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build a deterministic RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a uniformly distributed value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from raw bits (the `Standard` distribution).
pub trait Standard {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Unbiased uniform draw in `[0, span)` by rejection sampling.
#[inline]
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` representable in u64; draws below it give an
    // exactly uniform residue.
    let zone = span.wrapping_mul(u64::MAX / span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands a 64-bit seed into the full state,
            // guaranteeing a nonzero state for every seed.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn output_looks_uniform() {
        // Coarse chi-square-ish sanity: each of 16 buckets within 20% of mean.
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[(rng.gen::<u64>() & 15) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8000..12000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u32 = rng.gen_range(5..5);
    }
}
