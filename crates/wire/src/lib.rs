//! # lc-wire — the shared host↔engine wire format
//!
//! The paper's host↔accelerator contract (§4) is a small command set —
//! **Size** announces a document (64-bit DMA word count + exact byte
//! length), data words stream in, **End-of-Document** latches the match
//! counters, **Query Result** reads them back together with an XOR data
//! checksum and status bits, and a watchdog resets a stalled transfer.
//!
//! Two consumers speak this contract:
//!
//! * `lc-fpga`'s simulated register/DMA interface ([`FpgaProtocol`]), and
//! * `lc-service`'s TCP classification server, which carries the same
//!   commands inside length-framed network messages.
//!
//! This crate holds the pieces both share so the network path and the
//! simulated hardware path cannot drift apart: the [`dma`] word
//! packing/checksum primitives (factored out of `lc_fpga::link`) and the
//! [`frame`] codec (the byte-level encoding of commands and responses).
//!
//! [`FpgaProtocol`]: https://docs.rs/lc-fpga

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dma;
pub mod frame;

pub use dma::{pack_words, xor_checksum};
pub use frame::{
    read_frame, read_frame_mux, write_data_frame, write_data_frame_on, write_frame, write_frame_on,
    ErrorCode, FrameAccumulator, FrameError, PayloadBytes, WireCommand, WireResponse, CHANNEL_FLAG,
    MAX_FRAME_PAYLOAD,
};
