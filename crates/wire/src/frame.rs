//! Length-framed messages carrying the Size/EoD/QueryResult command flow.
//!
//! Every message is one frame: a 5-byte header (`kind: u8`, `payload_len:
//! u32` little-endian) followed by `payload_len` payload bytes. Commands
//! flow host→engine, responses engine→host; both directions use the same
//! header so a single incremental decoder ([`FrameAccumulator`]) serves
//! client and server.
//!
//! | kind | direction | message | payload |
//! |---|---|---|---|
//! | `0x01` | →engine | Size | `words: u32`, `bytes: u32` |
//! | `0x02` | →engine | Data | packed LE 64-bit DMA words (len ≡ 0 mod 8) |
//! | `0x03` | →engine | EndOfDocument | empty |
//! | `0x04` | →engine | QueryResult | empty |
//! | `0x05` | →engine | Reset | empty |
//! | `0x81` | engine→ | Hello | `count: u16`, then per language `len: u16` + UTF-8 name |
//! | `0x82` | engine→ | Result | `valid: u8`, `checksum: u64`, `total_ngrams: u64`, `p: u16`, `p × count: u64` |
//! | `0x83` | engine→ | Error | `code: u8`, `len: u16` + UTF-8 detail |

use std::io::{self, Read, Write};

/// Upper bound on a frame payload; larger announcements are a protocol
/// error (a malicious or corrupted peer), not an allocation request.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Frame kind bytes. Command kinds have the high bit clear, response kinds
/// have it set.
pub mod kind {
    /// Size command.
    pub const SIZE: u8 = 0x01;
    /// Data (DMA words) frame.
    pub const DATA: u8 = 0x02;
    /// End-of-Document command.
    pub const END_OF_DOCUMENT: u8 = 0x03;
    /// Query Result command.
    pub const QUERY_RESULT: u8 = 0x04;
    /// Reset command.
    pub const RESET: u8 = 0x05;
    /// Hello response (server banner: language names).
    pub const HELLO: u8 = 0x81;
    /// Result response (counters + checksum + status).
    pub const RESULT: u8 = 0x82;
    /// Error response.
    pub const ERROR: u8 = 0x83;
}

/// Decode-level failures: the byte stream does not form a valid frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Announced payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize(u32),
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// A Data payload whose length is not a whole number of 64-bit words.
    ShortDmaPayload(usize),
    /// Structurally invalid payload for the frame kind.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversize(n) => write!(f, "frame payload of {n} bytes exceeds limit"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::ShortDmaPayload(n) => {
                write!(f, "data payload of {n} bytes is not whole 64-bit words")
            }
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Error codes carried by Error response frames. Each mirrors a
/// `lc_fpga::protocol::ProtocolError` variant (or the watchdog event) so
/// the network service and the simulated hardware fail identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Query issued but no result latched.
    NoResult = 1,
    /// Size command while a document is in flight.
    SizeWhileBusy = 2,
    /// EndOfDocument before all announced words arrived.
    TruncatedTransfer = 3,
    /// DMA words with no Size announcement (or beyond the announced count).
    UnexpectedDma = 4,
    /// The watchdog reset a stalled session.
    WatchdogReset = 5,
    /// The peer sent bytes that do not decode as a valid frame.
    MalformedFrame = 6,
}

impl ErrorCode {
    /// Parse a wire byte.
    pub fn from_byte(b: u8) -> Result<Self, FrameError> {
        Ok(match b {
            1 => ErrorCode::NoResult,
            2 => ErrorCode::SizeWhileBusy,
            3 => ErrorCode::TruncatedTransfer,
            4 => ErrorCode::UnexpectedDma,
            5 => ErrorCode::WatchdogReset,
            6 => ErrorCode::MalformedFrame,
            _ => return Err(FrameError::Malformed("unknown error code")),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::NoResult => "no latched result to query",
            ErrorCode::SizeWhileBusy => "Size command while document in flight",
            ErrorCode::TruncatedTransfer => "truncated transfer",
            ErrorCode::UnexpectedDma => "DMA data with no Size announcement",
            ErrorCode::WatchdogReset => "watchdog reset a stalled session",
            ErrorCode::MalformedFrame => "malformed frame",
        };
        f.write_str(s)
    }
}

/// Host-issued commands — the register-interface flow of
/// `lc_fpga::protocol::Command`, carried as network frames. Data words ride
/// inside the same framing (TCP is the DMA channel).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireCommand {
    /// Announce an incoming document: number of 64-bit data words and the
    /// exact byte length (≤ 8 × words).
    Size {
        /// 64-bit words to expect via Data frames.
        words: u32,
        /// Exact document length in bytes.
        bytes: u32,
    },
    /// A burst of packed document words, kept as word-aligned raw bytes
    /// (`len % 8 == 0`) so the payload crosses client → socket → worker
    /// without repacking. [`WireCommand::data_words`] builds one from
    /// words; iterate words back out with `payload.chunks_exact(8)`.
    Data(Vec<u8>),
    /// Final word of the document has been sent; classify and latch.
    EndOfDocument,
    /// Read back the latched result.
    QueryResult,
    /// Reset the session state machine.
    Reset,
}

impl WireCommand {
    /// Build a Data frame from 64-bit words (tests and word-level hosts;
    /// the streaming client writes byte payloads directly).
    pub fn data_words(words: &[u64]) -> Self {
        let mut payload = Vec::with_capacity(words.len() * 8);
        for w in words {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        WireCommand::Data(payload)
    }

    /// Write this command as one frame.
    pub fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            WireCommand::Size { words, bytes } => {
                let mut payload = [0u8; 8];
                payload[..4].copy_from_slice(&words.to_le_bytes());
                payload[4..].copy_from_slice(&bytes.to_le_bytes());
                write_frame(w, kind::SIZE, &payload)
            }
            WireCommand::Data(payload) => {
                debug_assert_eq!(payload.len() % 8, 0, "data payload must be whole words");
                write_frame(w, kind::DATA, payload)
            }
            WireCommand::EndOfDocument => write_frame(w, kind::END_OF_DOCUMENT, &[]),
            WireCommand::QueryResult => write_frame(w, kind::QUERY_RESULT, &[]),
            WireCommand::Reset => write_frame(w, kind::RESET, &[]),
        }
    }

    /// Decode a command from a frame's kind byte and payload. Takes the
    /// payload by value: a Data payload is adopted as-is, no repacking.
    pub fn decode(frame_kind: u8, payload: Vec<u8>) -> Result<Self, FrameError> {
        match frame_kind {
            kind::SIZE => {
                if payload.len() != 8 {
                    return Err(FrameError::Malformed("Size payload must be 8 bytes"));
                }
                let words = u32::from_le_bytes(payload[..4].try_into().unwrap());
                let bytes = u32::from_le_bytes(payload[4..].try_into().unwrap());
                if u64::from(bytes) > u64::from(words) * 8 {
                    return Err(FrameError::Malformed("byte length exceeds announced words"));
                }
                Ok(WireCommand::Size { words, bytes })
            }
            kind::DATA => {
                if !payload.len().is_multiple_of(8) {
                    return Err(FrameError::ShortDmaPayload(payload.len()));
                }
                Ok(WireCommand::Data(payload))
            }
            kind::END_OF_DOCUMENT => expect_empty(payload, WireCommand::EndOfDocument),
            kind::QUERY_RESULT => expect_empty(payload, WireCommand::QueryResult),
            kind::RESET => expect_empty(payload, WireCommand::Reset),
            other => Err(FrameError::UnknownKind(other)),
        }
    }
}

fn expect_empty(payload: Vec<u8>, cmd: WireCommand) -> Result<WireCommand, FrameError> {
    if payload.is_empty() {
        Ok(cmd)
    } else {
        Err(FrameError::Malformed("command payload must be empty"))
    }
}

/// Engine-issued responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireResponse {
    /// Server banner sent once per connection: the programmed language
    /// names, index-aligned with Result counters.
    Hello {
        /// Language names in counter order.
        languages: Vec<String>,
    },
    /// The Query Result payload: counters + checksum + status, exactly the
    /// fields `lc_fpga::protocol::QueryResult` latches.
    Result {
        /// Per-language match counters.
        counts: Vec<u64>,
        /// Total n-grams tested in the document.
        total_ngrams: u64,
        /// XOR checksum of the received data words.
        checksum: u64,
        /// Status bit: transfer and classification valid.
        valid: bool,
    },
    /// A protocol fault, with the offended rule and a human-readable detail.
    Error {
        /// Which rule was violated.
        code: ErrorCode,
        /// Diagnostic detail.
        detail: String,
    },
}

impl WireResponse {
    /// Write this response as one frame.
    pub fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            WireResponse::Hello { languages } => {
                let mut payload = Vec::new();
                payload.extend_from_slice(&(languages.len() as u16).to_le_bytes());
                for name in languages {
                    let b = name.as_bytes();
                    payload.extend_from_slice(&(b.len() as u16).to_le_bytes());
                    payload.extend_from_slice(b);
                }
                write_frame(w, kind::HELLO, &payload)
            }
            WireResponse::Result {
                counts,
                total_ngrams,
                checksum,
                valid,
            } => {
                let mut payload = Vec::with_capacity(19 + counts.len() * 8);
                payload.push(u8::from(*valid));
                payload.extend_from_slice(&checksum.to_le_bytes());
                payload.extend_from_slice(&total_ngrams.to_le_bytes());
                payload.extend_from_slice(&(counts.len() as u16).to_le_bytes());
                for c in counts {
                    payload.extend_from_slice(&c.to_le_bytes());
                }
                write_frame(w, kind::RESULT, &payload)
            }
            WireResponse::Error { code, detail } => {
                let b = detail.as_bytes();
                let mut payload = Vec::with_capacity(3 + b.len());
                payload.push(*code as u8);
                payload.extend_from_slice(&(b.len() as u16).to_le_bytes());
                payload.extend_from_slice(b);
                write_frame(w, kind::ERROR, &payload)
            }
        }
    }

    /// Decode a response from a frame's kind byte and payload.
    pub fn decode(frame_kind: u8, payload: &[u8]) -> Result<Self, FrameError> {
        let mut r = Cursor { buf: payload };
        match frame_kind {
            kind::HELLO => {
                let count = r.u16()?;
                let mut languages = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let len = r.u16()? as usize;
                    let name = std::str::from_utf8(r.take(len)?)
                        .map_err(|_| FrameError::Malformed("language name not UTF-8"))?;
                    languages.push(name.to_string());
                }
                r.done()?;
                Ok(WireResponse::Hello { languages })
            }
            kind::RESULT => {
                let valid = r.u8()? != 0;
                let checksum = r.u64()?;
                let total_ngrams = r.u64()?;
                let p = r.u16()?;
                let mut counts = Vec::with_capacity(p as usize);
                for _ in 0..p {
                    counts.push(r.u64()?);
                }
                r.done()?;
                Ok(WireResponse::Result {
                    counts,
                    total_ngrams,
                    checksum,
                    valid,
                })
            }
            kind::ERROR => {
                let code = ErrorCode::from_byte(r.u8()?)?;
                let len = r.u16()? as usize;
                let detail = std::str::from_utf8(r.take(len)?)
                    .map_err(|_| FrameError::Malformed("error detail not UTF-8"))?
                    .to_string();
                r.done()?;
                Ok(WireResponse::Error { code, detail })
            }
            other => Err(FrameError::UnknownKind(other)),
        }
    }
}

/// Minimal checked reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() < n {
            return Err(FrameError::Malformed("payload shorter than declared"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing bytes in payload"))
        }
    }
}

fn write_header<W: Write>(w: &mut W, frame_kind: u8, len: u32) -> io::Result<()> {
    let mut header = [0u8; 5];
    header[0] = frame_kind;
    header[1..].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)
}

/// Write one complete frame.
pub fn write_frame<W: Write>(w: &mut W, frame_kind: u8, payload: &[u8]) -> io::Result<()> {
    write_header(w, frame_kind, payload.len() as u32)?;
    w.write_all(payload)
}

/// Write one Data frame straight from word-aligned payload bytes (the
/// zero-copy path for streaming hosts; `payload.len()` must be a multiple
/// of 8).
pub fn write_data_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert_eq!(payload.len() % 8, 0, "data payload must be whole words");
    write_frame(w, kind::DATA, payload)
}

/// Blocking-read one complete frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary; EOF mid-frame is `UnexpectedEof` (a truncated frame).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut header = [0u8; 5];
    let mut got = 0usize;
    while got < header.len() {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        got += n;
    }
    let len = u32::from_le_bytes(header[1..].try_into().unwrap());
    if len as usize > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversize(len).into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((header[0], payload)))
}

/// Incremental frame decoder for byte streams that arrive in arbitrary
/// pieces (socket reads under a read timeout may split frames anywhere).
/// Push bytes in, pull complete frames out; partial frames stay buffered.
#[derive(Debug, Default)]
pub struct FrameAccumulator {
    buf: Vec<u8>,
    /// Bytes already consumed from the front of `buf` (compacted lazily).
    consumed: usize,
}

impl FrameAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append freshly received bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(data);
    }

    /// Read up to `max` bytes from `r` directly into the buffer — one copy
    /// fewer than reading into scratch space and pushing. Returns the byte
    /// count from `r.read` (0 = EOF); read errors (including timeouts)
    /// leave the buffer unchanged.
    pub fn fill_from<R: Read>(&mut self, r: &mut R, max: usize) -> io::Result<usize> {
        self.compact();
        let start = self.buf.len();
        self.buf.resize(start + max, 0);
        match r.read(&mut self.buf[start..]) {
            Ok(n) => {
                self.buf.truncate(start + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(start);
                Err(e)
            }
        }
    }

    fn compact(&mut self) {
        if self.consumed > 0 && self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        } else if self.consumed > 4096 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }

    /// Pull the next complete frame, if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < 5 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[1..5].try_into().unwrap());
        if len as usize > MAX_FRAME_PAYLOAD {
            return Err(FrameError::Oversize(len));
        }
        let total = 5 + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let frame_kind = pending[0];
        let payload = pending[5..total].to_vec();
        self.consumed += total;
        Ok(Some((frame_kind, payload)))
    }

    /// Whether a partially received frame is buffered (an EOF now would be
    /// a truncated frame).
    pub fn mid_frame(&self) -> bool {
        self.buf.len() > self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_cmd(cmd: WireCommand) {
        let mut buf = Vec::new();
        cmd.encode(&mut buf).unwrap();
        let (k, payload) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(WireCommand::decode(k, payload).unwrap(), cmd);
    }

    fn roundtrip_resp(resp: WireResponse) {
        let mut buf = Vec::new();
        resp.encode(&mut buf).unwrap();
        let (k, payload) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(WireResponse::decode(k, &payload).unwrap(), resp);
    }

    #[test]
    fn commands_roundtrip() {
        roundtrip_cmd(WireCommand::Size {
            words: 17,
            bytes: 130,
        });
        roundtrip_cmd(WireCommand::data_words(&[1, 2, 3, u64::MAX]));
        roundtrip_cmd(WireCommand::data_words(&[]));
        roundtrip_cmd(WireCommand::EndOfDocument);
        roundtrip_cmd(WireCommand::QueryResult);
        roundtrip_cmd(WireCommand::Reset);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(WireResponse::Hello {
            languages: vec!["en".into(), "fr".into(), "español".into()],
        });
        roundtrip_resp(WireResponse::Result {
            counts: vec![4, 0, 99, u64::MAX],
            total_ngrams: 1234,
            checksum: 0xDEAD_BEEF,
            valid: true,
        });
        roundtrip_resp(WireResponse::Error {
            code: ErrorCode::TruncatedTransfer,
            detail: "3/100 words".into(),
        });
    }

    #[test]
    fn short_dma_payload_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind::DATA, &[1, 2, 3, 4, 5]).unwrap();
        let (k, payload) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(
            WireCommand::decode(k, payload),
            Err(FrameError::ShortDmaPayload(5))
        );
    }

    #[test]
    fn size_with_excess_bytes_is_rejected() {
        let mut payload = [0u8; 8];
        payload[..4].copy_from_slice(&2u32.to_le_bytes());
        payload[4..].copy_from_slice(&17u32.to_le_bytes()); // 17 > 2*8
        assert!(WireCommand::decode(kind::SIZE, payload.to_vec()).is_err());
    }

    #[test]
    fn oversize_frame_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        write_header(&mut buf, kind::DATA, u32::MAX).unwrap();
        assert!(read_frame(&mut buf.as_slice()).is_err());
        let mut acc = FrameAccumulator::new();
        acc.push(&buf);
        assert!(acc.next_frame().is_err());
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        WireCommand::data_words(&[7, 8, 9])
            .encode(&mut buf)
            .unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(read_frame(&mut [].as_slice()).unwrap(), None);
    }

    #[test]
    fn accumulator_handles_byte_at_a_time_delivery() {
        let mut buf = Vec::new();
        WireCommand::Size {
            words: 3,
            bytes: 20,
        }
        .encode(&mut buf)
        .unwrap();
        WireCommand::data_words(&[10, 20, 30])
            .encode(&mut buf)
            .unwrap();
        WireCommand::EndOfDocument.encode(&mut buf).unwrap();

        let mut acc = FrameAccumulator::new();
        let mut frames = Vec::new();
        for &b in &buf {
            acc.push(&[b]);
            while let Some((k, p)) = acc.next_frame().unwrap() {
                frames.push(WireCommand::decode(k, p).unwrap());
            }
        }
        assert!(!acc.mid_frame());
        assert_eq!(
            frames,
            vec![
                WireCommand::Size {
                    words: 3,
                    bytes: 20
                },
                WireCommand::data_words(&[10, 20, 30]),
                WireCommand::EndOfDocument,
            ]
        );
    }

    #[test]
    fn accumulator_fills_directly_from_reader() {
        let mut bytes = Vec::new();
        WireCommand::Size { words: 1, bytes: 8 }
            .encode(&mut bytes)
            .unwrap();
        WireCommand::data_words(&[99]).encode(&mut bytes).unwrap();
        let mut reader = bytes.as_slice();
        let mut acc = FrameAccumulator::new();
        // Tiny reads split frames arbitrarily.
        let mut frames = Vec::new();
        loop {
            let n = acc.fill_from(&mut reader, 3).unwrap();
            while let Some((k, p)) = acc.next_frame().unwrap() {
                frames.push(WireCommand::decode(k, p).unwrap());
            }
            if n == 0 {
                break;
            }
        }
        assert_eq!(
            frames,
            vec![
                WireCommand::Size { words: 1, bytes: 8 },
                WireCommand::data_words(&[99]),
            ]
        );
        assert!(!acc.mid_frame());
    }

    #[test]
    fn accumulator_reports_mid_frame() {
        let mut buf = Vec::new();
        WireCommand::data_words(&[1, 2]).encode(&mut buf).unwrap();
        let mut acc = FrameAccumulator::new();
        acc.push(&buf[..7]);
        assert_eq!(acc.next_frame().unwrap(), None);
        assert!(acc.mid_frame());
    }
}
