//! Length-framed messages carrying the Size/EoD/QueryResult command flow,
//! in two wire versions that interoperate on one connection.
//!
//! **v1** (legacy): a 5-byte header (`kind: u8`, `payload_len: u32`
//! little-endian) followed by `payload_len` payload bytes. Implicitly
//! channel 0.
//!
//! **v2** (multiplexed): the kind byte carries [`CHANNEL_FLAG`] (bit 6) and
//! the header grows a little-endian `channel: u16` between kind and length
//! — 7 bytes total. Channels are independent command streams sharing one
//! connection: each channel is its own session state machine, and responses
//! are tagged with the channel they answer. The two framings are
//! distinguished by the flag bit alone, so a decoder accepts any mix on one
//! connection and legacy v1 peers keep working unmodified (their frames are
//! channel 0). By convention channel 0 is always encoded as a v1 frame —
//! that is what makes v1 clients work against a v2 server without a version
//! handshake.
//!
//! | kind | direction | message | payload |
//! |---|---|---|---|
//! | `0x01` | →engine | Size | `words: u32`, `bytes: u32` [, `trace_id: u64`] |
//! | `0x02` | →engine | Data | packed LE 64-bit DMA words (len ≡ 0 mod 8) |
//! | `0x03` | →engine | EndOfDocument | empty |
//! | `0x04` | →engine | QueryResult | empty |
//! | `0x05` | →engine | Reset | empty |
//! | `0x06` | →engine | CloseChannel | empty |
//! | `0x07` | →engine | GetStats | `detail: u8` (0 = counters, 1 = counters + event rings) |
//! | `0x81` | engine→ | Hello | `count: u16`, then per language `len: u16` + UTF-8 name |
//! | `0x82` | engine→ | Result | `valid: u8`, `checksum: u64`, `total_ngrams: u64`, `p: u16`, `p × count: u64` |
//! | `0x83` | engine→ | Error | `code: u8`, `len: u16` + UTF-8 detail |
//! | `0x84` | engine→ | StatsReport | opaque versioned metrics snapshot (service-layer schema) |
//!
//! (v2 kinds are the same values with bit 6 set: `0x41` = Size on a
//! channel, `0xC2` = Result on a channel, and so on.)
//!
//! Commands flow host→engine, responses engine→host; both directions use
//! the same headers so a single incremental decoder ([`FrameAccumulator`])
//! serves client and server. The accumulator is a **rope of refcounted
//! chunks**: socket bytes land in `Arc`-backed buffers and completed Data
//! payloads are handed out as [`PayloadBytes`] — views into those same
//! buffers — so a payload crosses reader → decoder → worker with zero
//! copies.

use std::io::{self, Read, Write};
use std::sync::Arc;

/// Upper bound on a frame payload; larger announcements are a protocol
/// error (a malicious or corrupted peer), not an allocation request.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Bit 6 of the kind byte: set on v2 (channel-tagged) frames. No v1 kind
/// uses this bit, which is what makes the two framings distinguishable
/// from the first header byte.
pub const CHANNEL_FLAG: u8 = 0x40;

/// Frame kind bytes. Command kinds have the high bit clear, response kinds
/// have it set. These are the *base* kinds; a v2 frame carries
/// `kind | CHANNEL_FLAG` on the wire and decoders strip the flag.
pub mod kind {
    /// Size command.
    pub const SIZE: u8 = 0x01;
    /// Data (DMA words) frame.
    pub const DATA: u8 = 0x02;
    /// End-of-Document command.
    pub const END_OF_DOCUMENT: u8 = 0x03;
    /// Query Result command.
    pub const QUERY_RESULT: u8 = 0x04;
    /// Reset command.
    pub const RESET: u8 = 0x05;
    /// Close-channel control command (v2): tear down this channel's
    /// session server-side without closing the connection, freeing its
    /// `--max-channels` slot for reuse.
    pub const CLOSE_CHANNEL: u8 = 0x06;
    /// Get-stats control command: ask the server for a live metrics
    /// snapshot. Answered inline by the reactor (never queued behind
    /// documents), so it works mid-load.
    pub const GET_STATS: u8 = 0x07;
    /// Hello response (server banner: language names).
    pub const HELLO: u8 = 0x81;
    /// Result response (counters + checksum + status).
    pub const RESULT: u8 = 0x82;
    /// Error response.
    pub const ERROR: u8 = 0x83;
    /// Stats-report response: a versioned, section-length-prefixed binary
    /// metrics snapshot (schema owned by the service layer; opaque here).
    pub const STATS_REPORT: u8 = 0x84;
}

/// Decode-level failures: the byte stream does not form a valid frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Announced payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize(u32),
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// A Data payload whose length is not a whole number of 64-bit words.
    ShortDmaPayload(usize),
    /// Structurally invalid payload for the frame kind.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversize(n) => write!(f, "frame payload of {n} bytes exceeds limit"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::ShortDmaPayload(n) => {
                write!(f, "data payload of {n} bytes is not whole 64-bit words")
            }
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Error codes carried by Error response frames. Each mirrors a
/// `lc_fpga::protocol::ProtocolError` variant (or the watchdog event) so
/// the network service and the simulated hardware fail identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Query issued but no result latched.
    NoResult = 1,
    /// Size command while a document is in flight.
    SizeWhileBusy = 2,
    /// EndOfDocument before all announced words arrived.
    TruncatedTransfer = 3,
    /// DMA words with no Size announcement (or beyond the announced count).
    UnexpectedDma = 4,
    /// The watchdog reset a stalled session.
    WatchdogReset = 5,
    /// The peer sent bytes that do not decode as a valid frame.
    MalformedFrame = 6,
    /// The engine worker serving this channel panicked mid-document; the
    /// session was replaced and the in-flight document discarded.
    EngineFault = 7,
    /// The server is saturated (shard queue full with the outbound queue
    /// over high-water): the document was shed, not processed. Retriable
    /// after backoff.
    Busy = 8,
    /// The server is draining for shutdown and accepts no new documents on
    /// this connection.
    ShuttingDown = 9,
}

impl ErrorCode {
    /// Parse a wire byte.
    pub fn from_byte(b: u8) -> Result<Self, FrameError> {
        Ok(match b {
            1 => ErrorCode::NoResult,
            2 => ErrorCode::SizeWhileBusy,
            3 => ErrorCode::TruncatedTransfer,
            4 => ErrorCode::UnexpectedDma,
            5 => ErrorCode::WatchdogReset,
            6 => ErrorCode::MalformedFrame,
            7 => ErrorCode::EngineFault,
            8 => ErrorCode::Busy,
            9 => ErrorCode::ShuttingDown,
            _ => return Err(FrameError::Malformed("unknown error code")),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::NoResult => "no latched result to query",
            ErrorCode::SizeWhileBusy => "Size command while document in flight",
            ErrorCode::TruncatedTransfer => "truncated transfer",
            ErrorCode::UnexpectedDma => "DMA data with no Size announcement",
            ErrorCode::WatchdogReset => "watchdog reset a stalled session",
            ErrorCode::MalformedFrame => "malformed frame",
            ErrorCode::EngineFault => "engine worker fault; document discarded",
            ErrorCode::Busy => "server saturated; document shed",
            ErrorCode::ShuttingDown => "server draining for shutdown",
        };
        f.write_str(s)
    }
}

/// One contiguous view into a refcounted accumulator chunk.
#[derive(Clone)]
struct Piece {
    buf: Arc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl Piece {
    fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.start + self.len]
    }
}

/// A frame payload as zero or more refcounted segments of the read buffer
/// — the zero-copy alternative to `Vec<u8>`. The common case is one piece
/// (the whole payload landed inside one read chunk); a payload that
/// straddles a chunk boundary carries one piece per chunk, in order.
/// Consumers stream the pieces ([`PayloadBytes::pieces`]); word-granular
/// users (checksums) carry a partial-word state across piece boundaries.
///
/// Constructing one from a `Vec<u8>` (`From`) wraps the vector in an `Arc`
/// without copying, so owned payloads (client-built frames, tests) ride
/// the same type.
#[derive(Clone, Default)]
pub struct PayloadBytes {
    pieces: Vec<Piece>,
    len: usize,
}

impl PayloadBytes {
    /// Empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total byte length across all pieces.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload has no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The payload's contiguous segments, in order.
    pub fn pieces(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.pieces.iter().map(Piece::as_slice)
    }

    /// The whole payload as one slice, when it is a single segment.
    pub fn contiguous(&self) -> Option<&[u8]> {
        match self.pieces.len() {
            0 => Some(&[]),
            1 => Some(self.pieces[0].as_slice()),
            _ => None,
        }
    }

    /// Copy the payload out into a fresh vector (tests, diagnostics, and
    /// the legacy copying API — never the service hot path).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for p in self.pieces() {
            out.extend_from_slice(p);
        }
        out
    }

    /// Copy the payload into `out`; `out.len()` must equal `self.len()`.
    /// For small fixed-layout payloads (Size is 8 bytes).
    pub fn copy_to(&self, out: &mut [u8]) {
        assert_eq!(out.len(), self.len, "destination must match payload len");
        let mut at = 0usize;
        for p in self.pieces() {
            out[at..at + p.len()].copy_from_slice(p);
            at += p.len();
        }
    }

    /// Iterate all payload bytes in order.
    fn iter_bytes(&self) -> impl Iterator<Item = u8> + '_ {
        self.pieces().flat_map(|p| p.iter().copied())
    }
}

impl From<Vec<u8>> for PayloadBytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        if len == 0 {
            return Self::default();
        }
        Self {
            pieces: vec![Piece {
                buf: Arc::new(v),
                start: 0,
                len,
            }],
            len,
        }
    }
}

impl From<&[u8]> for PayloadBytes {
    fn from(v: &[u8]) -> Self {
        v.to_vec().into()
    }
}

impl PartialEq for PayloadBytes {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter_bytes().eq(other.iter_bytes())
    }
}

impl Eq for PayloadBytes {}

impl std::fmt::Debug for PayloadBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PayloadBytes({} bytes", self.len)?;
        if self.pieces.len() > 1 {
            write!(f, " in {} pieces", self.pieces.len())?;
        }
        if self.len <= 32 {
            write!(f, ": {:02x?}", self.to_vec())?;
        }
        f.write_str(")")
    }
}

/// Host-issued commands — the register-interface flow of
/// `lc_fpga::protocol::Command`, carried as network frames. Data words ride
/// inside the same framing (TCP is the DMA channel).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireCommand {
    /// Announce an incoming document: number of 64-bit data words and the
    /// exact byte length (≤ 8 × words).
    Size {
        /// 64-bit words to expect via Data frames.
        words: u32,
        /// Exact document length in bytes.
        bytes: u32,
        /// Optional **TraceContext extension**: a caller-chosen trace id
        /// carried as 8 extra little-endian payload bytes. A balancer (or
        /// any relaying tier) stamps its own id here so the backend's
        /// trace spans correlate across the hop; absent (the 8-byte v1
        /// payload) the server derives one from conn/channel/doc-seq.
        /// Legacy peers never send or see the extension — an 8-byte Size
        /// decodes to `trace: None` and `trace: None` encodes 8 bytes.
        trace: Option<u64>,
    },
    /// A burst of packed document words as word-aligned raw bytes
    /// (`len % 8 == 0`), held as refcounted buffer segments so the payload
    /// crosses client → socket → worker without repacking *or copying*.
    /// [`WireCommand::data_words`] builds one from words; consumers walk
    /// [`PayloadBytes::pieces`].
    Data(PayloadBytes),
    /// Final word of the document has been sent; classify and latch.
    EndOfDocument,
    /// Read back the latched result.
    QueryResult,
    /// Reset the session state machine.
    Reset,
    /// Tear down this channel's session (v2 control frame): the server
    /// drops the session and frees the channel's `max_channels` slot; the
    /// id may be reused (a later frame on it opens a fresh session). No
    /// acknowledgement is sent — per-channel FIFO through the shard queue
    /// already orders a reuse behind the close.
    CloseChannel,
    /// Ask the server for a live metrics snapshot (control frame, answered
    /// by [`WireResponse::StatsReport`] on the same channel). The reactor
    /// answers inline — a GetStats never waits behind queued documents.
    GetStats {
        /// Snapshot detail: 0 = counters only, 1 = counters plus the
        /// per-reactor event rings (when `--trace-ring` is enabled).
        /// Other values are reserved and treated as 0 by current servers.
        detail: u8,
    },
}

impl WireCommand {
    /// A Size announcement with no trace context (what a v1 peer sends).
    pub fn size(words: u32, bytes: u32) -> Self {
        WireCommand::Size {
            words,
            bytes,
            trace: None,
        }
    }

    /// A Size announcement carrying a propagated trace id (the wire-v2
    /// TraceContext extension).
    pub fn size_traced(words: u32, bytes: u32, trace_id: u64) -> Self {
        WireCommand::Size {
            words,
            bytes,
            trace: Some(trace_id),
        }
    }

    /// Build a Data frame from 64-bit words (tests and word-level hosts;
    /// the streaming client writes byte payloads directly).
    pub fn data_words(words: &[u64]) -> Self {
        let mut payload = Vec::with_capacity(words.len() * 8);
        for w in words {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        WireCommand::Data(payload.into())
    }

    /// Write this command as one v1 frame (channel 0).
    pub fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.encode_on(0, w)
    }

    /// Write this command as one frame on `channel` (0 encodes as v1, any
    /// other channel as v2 with the channel in the header).
    pub fn encode_on<W: Write>(&self, channel: u16, w: &mut W) -> io::Result<()> {
        match self {
            WireCommand::Size {
                words,
                bytes,
                trace,
            } => {
                let mut payload = [0u8; 16];
                payload[..4].copy_from_slice(&words.to_le_bytes());
                payload[4..8].copy_from_slice(&bytes.to_le_bytes());
                let len = match trace {
                    Some(id) => {
                        payload[8..].copy_from_slice(&id.to_le_bytes());
                        16
                    }
                    None => 8,
                };
                write_frame_on(w, kind::SIZE, channel, &payload[..len])
            }
            WireCommand::Data(payload) => {
                debug_assert_eq!(payload.len() % 8, 0, "data payload must be whole words");
                write_header_on(w, kind::DATA, channel, payload.len() as u32)?;
                for p in payload.pieces() {
                    w.write_all(p)?;
                }
                Ok(())
            }
            WireCommand::EndOfDocument => write_frame_on(w, kind::END_OF_DOCUMENT, channel, &[]),
            WireCommand::QueryResult => write_frame_on(w, kind::QUERY_RESULT, channel, &[]),
            WireCommand::Reset => write_frame_on(w, kind::RESET, channel, &[]),
            WireCommand::CloseChannel => write_frame_on(w, kind::CLOSE_CHANNEL, channel, &[]),
            WireCommand::GetStats { detail } => {
                write_frame_on(w, kind::GET_STATS, channel, &[*detail])
            }
        }
    }

    /// Decode a command from a frame's base kind byte and payload. Takes
    /// the payload by value: a Data payload is adopted as-is — no
    /// repacking, no copy.
    pub fn decode(frame_kind: u8, payload: impl Into<PayloadBytes>) -> Result<Self, FrameError> {
        let payload: PayloadBytes = payload.into();
        match frame_kind {
            kind::SIZE => {
                // 8 bytes is the v1 layout; 16 adds the TraceContext
                // extension (trailing trace_id: u64). Nothing in between.
                if payload.len() != 8 && payload.len() != 16 {
                    return Err(FrameError::Malformed("Size payload must be 8 or 16 bytes"));
                }
                let mut b = [0u8; 16];
                payload.copy_to(&mut b[..payload.len()]);
                let words = u32::from_le_bytes(b[..4].try_into().unwrap());
                let bytes = u32::from_le_bytes(b[4..8].try_into().unwrap());
                if u64::from(bytes) > u64::from(words) * 8 {
                    return Err(FrameError::Malformed("byte length exceeds announced words"));
                }
                let trace =
                    (payload.len() == 16).then(|| u64::from_le_bytes(b[8..].try_into().unwrap()));
                Ok(WireCommand::Size {
                    words,
                    bytes,
                    trace,
                })
            }
            kind::DATA => {
                if !payload.len().is_multiple_of(8) {
                    return Err(FrameError::ShortDmaPayload(payload.len()));
                }
                Ok(WireCommand::Data(payload))
            }
            kind::END_OF_DOCUMENT => expect_empty(payload, WireCommand::EndOfDocument),
            kind::QUERY_RESULT => expect_empty(payload, WireCommand::QueryResult),
            kind::RESET => expect_empty(payload, WireCommand::Reset),
            kind::CLOSE_CHANNEL => expect_empty(payload, WireCommand::CloseChannel),
            kind::GET_STATS => {
                if payload.len() != 1 {
                    return Err(FrameError::Malformed("GetStats payload must be 1 byte"));
                }
                let mut b = [0u8; 1];
                payload.copy_to(&mut b);
                Ok(WireCommand::GetStats { detail: b[0] })
            }
            other => Err(FrameError::UnknownKind(other)),
        }
    }
}

fn expect_empty(payload: PayloadBytes, cmd: WireCommand) -> Result<WireCommand, FrameError> {
    if payload.is_empty() {
        Ok(cmd)
    } else {
        Err(FrameError::Malformed("command payload must be empty"))
    }
}

/// Engine-issued responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireResponse {
    /// Server banner sent once per connection: the programmed language
    /// names, index-aligned with Result counters.
    Hello {
        /// Language names in counter order.
        languages: Vec<String>,
    },
    /// The Query Result payload: counters + checksum + status, exactly the
    /// fields `lc_fpga::protocol::QueryResult` latches.
    Result {
        /// Per-language match counters.
        counts: Vec<u64>,
        /// Total n-grams tested in the document.
        total_ngrams: u64,
        /// XOR checksum of the received data words.
        checksum: u64,
        /// Status bit: transfer and classification valid.
        valid: bool,
    },
    /// A protocol fault, with the offended rule and a human-readable detail.
    Error {
        /// Which rule was violated.
        code: ErrorCode,
        /// Diagnostic detail.
        detail: String,
    },
    /// Answer to [`WireCommand::GetStats`]: the server's metrics snapshot
    /// in a versioned, section-length-prefixed binary schema. The schema
    /// is owned by the service layer (`MetricsSnapshot::{encode,decode}`);
    /// the wire layer carries it opaquely so schema evolution never needs
    /// a frame-format change.
    StatsReport {
        /// The encoded snapshot bytes.
        payload: Vec<u8>,
    },
}

impl WireResponse {
    /// Write this response as one v1 frame (channel 0).
    pub fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.encode_on(0, w)
    }

    /// Write this response as one frame on `channel` (0 encodes as v1 —
    /// what keeps legacy clients working — any other channel as v2).
    pub fn encode_on<W: Write>(&self, channel: u16, w: &mut W) -> io::Result<()> {
        match self {
            WireResponse::Hello { languages } => {
                let mut payload = Vec::new();
                payload.extend_from_slice(&(languages.len() as u16).to_le_bytes());
                for name in languages {
                    let b = name.as_bytes();
                    payload.extend_from_slice(&(b.len() as u16).to_le_bytes());
                    payload.extend_from_slice(b);
                }
                write_frame_on(w, kind::HELLO, channel, &payload)
            }
            WireResponse::Result {
                counts,
                total_ngrams,
                checksum,
                valid,
            } => {
                let mut payload = Vec::with_capacity(19 + counts.len() * 8);
                payload.push(u8::from(*valid));
                payload.extend_from_slice(&checksum.to_le_bytes());
                payload.extend_from_slice(&total_ngrams.to_le_bytes());
                payload.extend_from_slice(&(counts.len() as u16).to_le_bytes());
                for c in counts {
                    payload.extend_from_slice(&c.to_le_bytes());
                }
                write_frame_on(w, kind::RESULT, channel, &payload)
            }
            WireResponse::Error { code, detail } => {
                let b = detail.as_bytes();
                let mut payload = Vec::with_capacity(3 + b.len());
                payload.push(*code as u8);
                payload.extend_from_slice(&(b.len() as u16).to_le_bytes());
                payload.extend_from_slice(b);
                write_frame_on(w, kind::ERROR, channel, &payload)
            }
            WireResponse::StatsReport { payload } => {
                write_frame_on(w, kind::STATS_REPORT, channel, payload)
            }
        }
    }

    /// Decode a response from a frame's base kind byte and payload.
    pub fn decode(frame_kind: u8, payload: &[u8]) -> Result<Self, FrameError> {
        let mut r = Cursor { buf: payload };
        match frame_kind {
            kind::HELLO => {
                let count = r.u16()?;
                let mut languages = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let len = r.u16()? as usize;
                    let name = std::str::from_utf8(r.take(len)?)
                        .map_err(|_| FrameError::Malformed("language name not UTF-8"))?;
                    languages.push(name.to_string());
                }
                r.done()?;
                Ok(WireResponse::Hello { languages })
            }
            kind::RESULT => {
                let valid = r.u8()? != 0;
                let checksum = r.u64()?;
                let total_ngrams = r.u64()?;
                let p = r.u16()?;
                let mut counts = Vec::with_capacity(p as usize);
                for _ in 0..p {
                    counts.push(r.u64()?);
                }
                r.done()?;
                Ok(WireResponse::Result {
                    counts,
                    total_ngrams,
                    checksum,
                    valid,
                })
            }
            kind::ERROR => {
                let code = ErrorCode::from_byte(r.u8()?)?;
                let len = r.u16()? as usize;
                let detail = std::str::from_utf8(r.take(len)?)
                    .map_err(|_| FrameError::Malformed("error detail not UTF-8"))?
                    .to_string();
                r.done()?;
                Ok(WireResponse::Error { code, detail })
            }
            kind::STATS_REPORT => Ok(WireResponse::StatsReport {
                payload: payload.to_vec(),
            }),
            other => Err(FrameError::UnknownKind(other)),
        }
    }
}

/// Minimal checked reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() < n {
            return Err(FrameError::Malformed("payload shorter than declared"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing bytes in payload"))
        }
    }
}

fn write_header<W: Write>(w: &mut W, frame_kind: u8, len: u32) -> io::Result<()> {
    let mut header = [0u8; 5];
    header[0] = frame_kind;
    header[1..].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)
}

/// Write a frame header for `channel` (v1 when 0, v2 otherwise).
fn write_header_on<W: Write>(w: &mut W, frame_kind: u8, channel: u16, len: u32) -> io::Result<()> {
    debug_assert_eq!(frame_kind & CHANNEL_FLAG, 0, "pass the base kind");
    if channel == 0 {
        return write_header(w, frame_kind, len);
    }
    let mut header = [0u8; 7];
    header[0] = frame_kind | CHANNEL_FLAG;
    header[1..3].copy_from_slice(&channel.to_le_bytes());
    header[3..].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)
}

/// Write one complete v1 frame (channel 0).
pub fn write_frame<W: Write>(w: &mut W, frame_kind: u8, payload: &[u8]) -> io::Result<()> {
    write_frame_on(w, frame_kind, 0, payload)
}

/// Write one complete frame on `channel` (v1 framing when 0, v2 otherwise).
pub fn write_frame_on<W: Write>(
    w: &mut W,
    frame_kind: u8,
    channel: u16,
    payload: &[u8],
) -> io::Result<()> {
    write_header_on(w, frame_kind, channel, payload.len() as u32)?;
    w.write_all(payload)
}

/// Write one Data frame straight from word-aligned payload bytes (the
/// zero-copy path for streaming hosts; `payload.len()` must be a multiple
/// of 8).
pub fn write_data_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    write_data_frame_on(w, 0, payload)
}

/// [`write_data_frame`] on a channel.
pub fn write_data_frame_on<W: Write>(w: &mut W, channel: u16, payload: &[u8]) -> io::Result<()> {
    debug_assert_eq!(payload.len() % 8, 0, "data payload must be whole words");
    write_frame_on(w, kind::DATA, channel, payload)
}

/// Blocking-read one complete v1 frame. Returns `Ok(None)` on a clean EOF
/// at a frame boundary; EOF mid-frame is `UnexpectedEof` (a truncated
/// frame). Peers that may send v2 frames need [`read_frame_mux`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<(u8, Vec<u8>)>> {
    Ok(read_frame_mux(r)?.map(|(kind, _channel, payload)| (kind, payload)))
}

/// Header length for a frame whose first byte is `first` (5 for v1,
/// 7 for channel-flagged v2).
fn header_len(first: u8) -> usize {
    if first & CHANNEL_FLAG != 0 {
        7
    } else {
        5
    }
}

/// Split a complete header (the first `header_len(header[0])` bytes are
/// valid; the rest may be garbage) into base kind, channel, and payload
/// length — the one place the two framings' layouts live, shared by the
/// blocking and incremental decoders.
fn parse_header(header: &[u8; 7]) -> (u8, u16, u32) {
    if header[0] & CHANNEL_FLAG != 0 {
        (
            header[0] & !CHANNEL_FLAG,
            u16::from_le_bytes(header[1..3].try_into().unwrap()),
            u32::from_le_bytes(header[3..7].try_into().unwrap()),
        )
    } else {
        (
            header[0],
            0,
            u32::from_le_bytes(header[1..5].try_into().unwrap()),
        )
    }
}

/// Blocking-read one complete frame of either version, returning the base
/// kind, the channel (0 for v1 frames), and the payload. `Ok(None)` is a
/// clean EOF at a frame boundary.
pub fn read_frame_mux<R: Read>(r: &mut R) -> io::Result<Option<(u8, u16, Vec<u8>)>> {
    let mut header = [0u8; 7];
    // Both header forms are at least 5 bytes, so read 5 up front (no
    // extra syscall on unbuffered streams) and top up to 7 only for v2.
    let mut got = 0usize;
    while got < 5 {
        let n = r.read(&mut header[got..5])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        got += n;
    }
    let hlen = header_len(header[0]);
    while got < hlen {
        let n = r.read(&mut header[got..hlen])?;
        if n == 0 {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        got += n;
    }
    let (kind, channel, len) = parse_header(&header);
    if len as usize > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversize(len).into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((kind, channel, payload)))
}

/// One refcounted chunk of the accumulator's rope. `buf` is fully
/// pre-zeroed at allocation; `start..filled` is the live window.
#[derive(Debug)]
struct Chunk {
    buf: Arc<Vec<u8>>,
    start: usize,
    filled: usize,
}

impl Chunk {
    fn pending(&self) -> usize {
        self.filled - self.start
    }
}

/// Incremental frame decoder for byte streams that arrive in arbitrary
/// pieces (socket reads under a read timeout may split frames anywhere).
/// Push bytes in, pull complete frames out; partial frames stay buffered.
///
/// Internally a **rope of refcounted chunks**: [`FrameAccumulator::fill_from`]
/// reads straight into the tail chunk, and [`FrameAccumulator::next_frame_mux`]
/// hands completed payloads out as [`PayloadBytes`] — `Arc` views into the
/// chunks the bytes already live in, **zero copies per frame**. A chunk
/// stays alive (pinned by the `Arc`) until every payload segment into it is
/// dropped; once a payload has been handed out of a chunk, new bytes go to
/// a fresh chunk rather than mutating the shared one. The legacy
/// [`FrameAccumulator::next_frame`] copies payloads out as `Vec`s and
/// counts those copies, so the zero-copy property is *observable*:
/// [`FrameAccumulator::payload_copies`] over [`FrameAccumulator::data_frames`]
/// is the copies-per-frame ratio the service exports.
#[derive(Debug)]
pub struct FrameAccumulator {
    chunks: std::collections::VecDeque<Chunk>,
    chunk_size: usize,
    data_frames: u64,
    payload_copies: u64,
}

/// Default chunk size for the rope (matches the default socket read size).
const DEFAULT_CHUNK: usize = 64 * 1024;

impl Default for FrameAccumulator {
    fn default() -> Self {
        Self::with_chunk_size(DEFAULT_CHUNK)
    }
}

impl FrameAccumulator {
    /// Empty accumulator with the default chunk size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty accumulator whose rope chunks hold `chunk_size` bytes each
    /// (sized to the reader's typical burst; payloads larger than a chunk
    /// simply span several pieces).
    pub fn with_chunk_size(chunk_size: usize) -> Self {
        Self {
            chunks: std::collections::VecDeque::new(),
            chunk_size: chunk_size.max(64),
            data_frames: u64::default(),
            payload_copies: u64::default(),
        }
    }

    /// Data frames decoded so far.
    pub fn data_frames(&self) -> u64 {
        self.data_frames
    }

    /// Payloads that were *copied* out (the legacy `next_frame` Vec path).
    /// Stays zero when every frame is pulled via the shared
    /// [`FrameAccumulator::next_frame_mux`] API.
    pub fn payload_copies(&self) -> u64 {
        self.payload_copies
    }

    /// Bytes buffered and not yet consumed by a decoded frame.
    fn available(&self) -> usize {
        self.chunks.iter().map(Chunk::pending).sum()
    }

    /// Make sure the tail chunk can accept new bytes: it must exist, have
    /// spare capacity, and be uniquely owned (no payload handed out of it).
    fn ensure_writable(&mut self) {
        let reusable = match self.chunks.back_mut() {
            Some(c) => c.filled < c.buf.len() && Arc::get_mut(&mut c.buf).is_some(),
            None => false,
        };
        if !reusable {
            self.chunks.push_back(Chunk {
                buf: Arc::new(vec![0u8; self.chunk_size]),
                start: 0,
                filled: 0,
            });
        }
    }

    /// Append freshly received bytes (copying API for pushed inputs; the
    /// socket path uses [`FrameAccumulator::fill_from`]).
    pub fn push(&mut self, data: &[u8]) {
        let mut data = data;
        while !data.is_empty() {
            self.ensure_writable();
            let chunk = self.chunks.back_mut().expect("ensure_writable pushed one");
            let buf = Arc::get_mut(&mut chunk.buf).expect("tail chunk is unique");
            let take = data.len().min(buf.len() - chunk.filled);
            buf[chunk.filled..chunk.filled + take].copy_from_slice(&data[..take]);
            chunk.filled += take;
            data = &data[take..];
        }
    }

    /// Read up to `max` bytes from `r` directly into the rope's tail chunk
    /// — the bytes land where payload segments will point, so Data frames
    /// reach workers without ever being copied. Returns the byte count
    /// from `r.read` (0 = EOF; may be less than `max` when the tail chunk
    /// has less spare room — callers loop anyway); read errors (including
    /// timeouts) leave the buffer unchanged.
    pub fn fill_from<R: Read>(&mut self, r: &mut R, max: usize) -> io::Result<usize> {
        self.ensure_writable();
        let chunk = self.chunks.back_mut().expect("ensure_writable pushed one");
        let buf = Arc::get_mut(&mut chunk.buf).expect("tail chunk is unique");
        let end = buf.len().min(chunk.filled + max);
        let n = r.read(&mut buf[chunk.filled..end])?;
        chunk.filled += n;
        Ok(n)
    }

    /// Copy the first `out.len()` buffered bytes into `out` without
    /// consuming; `false` if fewer bytes are buffered. (Headers only —
    /// at most 7 bytes.)
    fn peek_copy(&self, out: &mut [u8]) -> bool {
        let mut at = 0usize;
        for c in &self.chunks {
            let pending = &c.buf[c.start..c.filled];
            let take = pending.len().min(out.len() - at);
            out[at..at + take].copy_from_slice(&pending[..take]);
            at += take;
            if at == out.len() {
                return true;
            }
        }
        false
    }

    /// Drop fully consumed chunks; a uniquely owned tail chunk is rewound
    /// for reuse instead (steady state allocates nothing).
    fn trim(&mut self) {
        while let Some(front) = self.chunks.front() {
            if front.pending() > 0 {
                break;
            }
            if self.chunks.len() == 1 {
                let only = self.chunks.front_mut().expect("len checked");
                if Arc::get_mut(&mut only.buf).is_some() {
                    only.start = 0;
                    only.filled = 0;
                } else {
                    self.chunks.pop_front();
                }
                break;
            }
            self.chunks.pop_front();
        }
    }

    /// Consume `n` buffered bytes (header bytes — discarded, not handed out).
    fn consume(&mut self, n: usize) {
        let mut left = n;
        while left > 0 {
            let front = self.chunks.front_mut().expect("consume within available");
            let take = front.pending().min(left);
            front.start += take;
            left -= take;
            if front.pending() == 0 && left > 0 {
                self.chunks.pop_front();
            }
        }
        self.trim();
    }

    /// Consume `len` buffered bytes as refcounted payload segments.
    fn take_payload(&mut self, len: usize) -> PayloadBytes {
        let mut pieces = Vec::new();
        let mut left = len;
        while left > 0 {
            let front = self.chunks.front_mut().expect("payload within available");
            let take = front.pending().min(left);
            pieces.push(Piece {
                buf: Arc::clone(&front.buf),
                start: front.start,
                len: take,
            });
            front.start += take;
            left -= take;
            if front.pending() == 0 && left > 0 {
                self.chunks.pop_front();
            }
        }
        self.trim();
        PayloadBytes { pieces, len }
    }

    /// Pull the next complete frame of either wire version: base kind,
    /// channel (0 for v1 frames), and the payload as zero-copy segments.
    pub fn next_frame_mux(&mut self) -> Result<Option<(u8, u16, PayloadBytes)>, FrameError> {
        let mut header = [0u8; 7];
        if !self.peek_copy(&mut header[..1]) {
            return Ok(None);
        }
        let hlen = header_len(header[0]);
        if !self.peek_copy(&mut header[..hlen]) {
            return Ok(None);
        }
        let (base_kind, channel, len) = parse_header(&header);
        if len as usize > MAX_FRAME_PAYLOAD {
            return Err(FrameError::Oversize(len));
        }
        if self.available() < hlen + len as usize {
            return Ok(None);
        }
        self.consume(hlen);
        let payload = self.take_payload(len as usize);
        if base_kind == kind::DATA {
            self.data_frames += 1;
        }
        Ok(Some((base_kind, channel, payload)))
    }

    /// Pull the next complete frame with the payload copied out (legacy
    /// API; drops the channel tag). Each nonempty payload copied here
    /// counts in [`FrameAccumulator::payload_copies`].
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
        match self.next_frame_mux()? {
            Some((frame_kind, _channel, payload)) => {
                if !payload.is_empty() {
                    self.payload_copies += 1;
                }
                Ok(Some((frame_kind, payload.to_vec())))
            }
            None => Ok(None),
        }
    }

    /// Whether a partially received frame is buffered (an EOF now would be
    /// a truncated frame).
    pub fn mid_frame(&self) -> bool {
        self.available() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_cmd(cmd: WireCommand) {
        let mut buf = Vec::new();
        cmd.encode(&mut buf).unwrap();
        let (k, payload) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(WireCommand::decode(k, payload).unwrap(), cmd);
    }

    fn roundtrip_resp(resp: WireResponse) {
        let mut buf = Vec::new();
        resp.encode(&mut buf).unwrap();
        let (k, payload) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(WireResponse::decode(k, &payload).unwrap(), resp);
    }

    #[test]
    fn commands_roundtrip() {
        roundtrip_cmd(WireCommand::size(17, 130));
        roundtrip_cmd(WireCommand::size_traced(17, 130, 0xA5A5_DEAD_BEEF_0001));
        roundtrip_cmd(WireCommand::data_words(&[1, 2, 3, u64::MAX]));
        roundtrip_cmd(WireCommand::data_words(&[]));
        roundtrip_cmd(WireCommand::EndOfDocument);
        roundtrip_cmd(WireCommand::QueryResult);
        roundtrip_cmd(WireCommand::Reset);
        roundtrip_cmd(WireCommand::CloseChannel);
        roundtrip_cmd(WireCommand::GetStats { detail: 0 });
        roundtrip_cmd(WireCommand::GetStats { detail: 1 });
    }

    #[test]
    fn get_stats_roundtrips_on_a_channel() {
        let mut buf = Vec::new();
        WireCommand::GetStats { detail: 1 }
            .encode_on(9, &mut buf)
            .unwrap();
        assert_eq!(buf[0], kind::GET_STATS | CHANNEL_FLAG);
        let (k, ch, payload) = read_frame_mux(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!((k, ch), (kind::GET_STATS, 9));
        assert_eq!(
            WireCommand::decode(k, payload).unwrap(),
            WireCommand::GetStats { detail: 1 }
        );
    }

    #[test]
    fn stats_report_carries_opaque_bytes_on_any_channel() {
        let blob: Vec<u8> = (0..=255u8).collect();
        for channel in [0u16, 7] {
            let mut buf = Vec::new();
            WireResponse::StatsReport {
                payload: blob.clone(),
            }
            .encode_on(channel, &mut buf)
            .unwrap();
            let (k, ch, payload) = read_frame_mux(&mut buf.as_slice()).unwrap().unwrap();
            assert_eq!((k, ch), (kind::STATS_REPORT, channel));
            assert_eq!(
                WireResponse::decode(k, &payload).unwrap(),
                WireResponse::StatsReport {
                    payload: blob.clone()
                }
            );
        }
    }

    #[test]
    fn close_channel_roundtrips_on_a_channel() {
        let mut buf = Vec::new();
        WireCommand::CloseChannel.encode_on(42, &mut buf).unwrap();
        assert_eq!(buf[0], kind::CLOSE_CHANNEL | CHANNEL_FLAG);
        let (k, ch, payload) = read_frame_mux(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!((k, ch), (kind::CLOSE_CHANNEL, 42));
        assert_eq!(
            WireCommand::decode(k, payload).unwrap(),
            WireCommand::CloseChannel
        );
    }

    #[test]
    fn every_error_code_roundtrips_the_wire() {
        for code in [
            ErrorCode::NoResult,
            ErrorCode::SizeWhileBusy,
            ErrorCode::TruncatedTransfer,
            ErrorCode::UnexpectedDma,
            ErrorCode::WatchdogReset,
            ErrorCode::MalformedFrame,
            ErrorCode::EngineFault,
            ErrorCode::Busy,
            ErrorCode::ShuttingDown,
        ] {
            assert_eq!(ErrorCode::from_byte(code as u8).unwrap(), code);
            roundtrip_resp(WireResponse::Error {
                code,
                detail: "x".into(),
            });
        }
        assert!(ErrorCode::from_byte(0).is_err());
        assert!(ErrorCode::from_byte(10).is_err());
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(WireResponse::Hello {
            languages: vec!["en".into(), "fr".into(), "español".into()],
        });
        roundtrip_resp(WireResponse::Result {
            counts: vec![4, 0, 99, u64::MAX],
            total_ngrams: 1234,
            checksum: 0xDEAD_BEEF,
            valid: true,
        });
        roundtrip_resp(WireResponse::Error {
            code: ErrorCode::TruncatedTransfer,
            detail: "3/100 words".into(),
        });
    }

    #[test]
    fn v2_frames_carry_their_channel() {
        let mut buf = Vec::new();
        WireCommand::size(3, 20).encode_on(7, &mut buf).unwrap();
        WireCommand::data_words(&[1, 2, 3])
            .encode_on(513, &mut buf)
            .unwrap();
        WireResponse::Error {
            code: ErrorCode::NoResult,
            detail: String::new(),
        }
        .encode_on(7, &mut buf)
        .unwrap();
        // First header byte: base kind + the channel flag.
        assert_eq!(buf[0], kind::SIZE | CHANNEL_FLAG);

        let mut r = buf.as_slice();
        let (k, ch, payload) = read_frame_mux(&mut r).unwrap().unwrap();
        assert_eq!((k, ch), (kind::SIZE, 7));
        assert_eq!(
            WireCommand::decode(k, payload).unwrap(),
            WireCommand::size(3, 20)
        );
        let (k, ch, payload) = read_frame_mux(&mut r).unwrap().unwrap();
        assert_eq!((k, ch), (kind::DATA, 513));
        assert_eq!(
            WireCommand::decode(k, payload).unwrap(),
            WireCommand::data_words(&[1, 2, 3])
        );
        let (k, ch, payload) = read_frame_mux(&mut r).unwrap().unwrap();
        assert_eq!((k, ch), (kind::ERROR, 7));
        assert!(matches!(
            WireResponse::decode(k, &payload).unwrap(),
            WireResponse::Error {
                code: ErrorCode::NoResult,
                ..
            }
        ));
        assert_eq!(read_frame_mux(&mut r).unwrap(), None);
    }

    #[test]
    fn channel_zero_encodes_as_v1() {
        let mut v1 = Vec::new();
        WireCommand::EndOfDocument.encode(&mut v1).unwrap();
        let mut on0 = Vec::new();
        WireCommand::EndOfDocument.encode_on(0, &mut on0).unwrap();
        assert_eq!(v1, on0);
        assert_eq!(v1.len(), 5); // v1 header, no channel field
    }

    #[test]
    fn short_dma_payload_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind::DATA, &[1, 2, 3, 4, 5]).unwrap();
        let (k, payload) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(
            WireCommand::decode(k, payload),
            Err(FrameError::ShortDmaPayload(5))
        );
    }

    #[test]
    fn untraced_size_is_bit_identical_to_v1() {
        // The TraceContext extension must be invisible when absent: an
        // untraced Size encodes the exact 13 bytes a pre-extension peer
        // sends, so v1 captures stay byte-for-byte valid.
        let mut buf = Vec::new();
        WireCommand::size(17, 130).encode(&mut buf).unwrap();
        assert_eq!(buf.len(), 5 + 8);
        let mut expected = vec![kind::SIZE];
        expected.extend_from_slice(&8u32.to_le_bytes());
        expected.extend_from_slice(&17u32.to_le_bytes());
        expected.extend_from_slice(&130u32.to_le_bytes());
        assert_eq!(buf, expected);
    }

    #[test]
    fn traced_size_roundtrips_on_a_channel() {
        let mut buf = Vec::new();
        WireCommand::size_traced(3, 20, u64::MAX)
            .encode_on(7, &mut buf)
            .unwrap();
        assert_eq!(buf.len(), 7 + 16);
        let (k, ch, payload) = read_frame_mux(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!((k, ch), (kind::SIZE, 7));
        assert_eq!(
            WireCommand::decode(k, payload).unwrap(),
            WireCommand::size_traced(3, 20, u64::MAX)
        );
    }

    #[test]
    fn size_payload_between_8_and_16_bytes_is_rejected() {
        for len in [0usize, 7, 9, 12, 15, 17] {
            let payload = vec![0u8; len];
            assert!(
                WireCommand::decode(kind::SIZE, payload).is_err(),
                "len {len} must be malformed"
            );
        }
    }

    #[test]
    fn size_with_excess_bytes_is_rejected() {
        let mut payload = [0u8; 8];
        payload[..4].copy_from_slice(&2u32.to_le_bytes());
        payload[4..].copy_from_slice(&17u32.to_le_bytes()); // 17 > 2*8
        assert!(WireCommand::decode(kind::SIZE, payload.to_vec()).is_err());
    }

    #[test]
    fn oversize_frame_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        write_header(&mut buf, kind::DATA, u32::MAX).unwrap();
        assert!(read_frame(&mut buf.as_slice()).is_err());
        let mut acc = FrameAccumulator::new();
        acc.push(&buf);
        assert!(acc.next_frame().is_err());
        // Same guard on the v2 header.
        let mut buf = Vec::new();
        write_header_on(&mut buf, kind::DATA, 9, u32::MAX).unwrap();
        assert!(read_frame_mux(&mut buf.as_slice()).is_err());
        let mut acc = FrameAccumulator::new();
        acc.push(&buf);
        assert!(acc.next_frame_mux().is_err());
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        WireCommand::data_words(&[7, 8, 9])
            .encode(&mut buf)
            .unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(read_frame(&mut [].as_slice()).unwrap(), None);
    }

    #[test]
    fn accumulator_handles_byte_at_a_time_delivery() {
        let mut buf = Vec::new();
        WireCommand::size(3, 20).encode(&mut buf).unwrap();
        WireCommand::data_words(&[10, 20, 30])
            .encode(&mut buf)
            .unwrap();
        WireCommand::EndOfDocument.encode(&mut buf).unwrap();

        let mut acc = FrameAccumulator::new();
        let mut frames = Vec::new();
        for &b in &buf {
            acc.push(&[b]);
            while let Some((k, p)) = acc.next_frame().unwrap() {
                frames.push(WireCommand::decode(k, p).unwrap());
            }
        }
        assert!(!acc.mid_frame());
        assert_eq!(
            frames,
            vec![
                WireCommand::size(3, 20),
                WireCommand::data_words(&[10, 20, 30]),
                WireCommand::EndOfDocument,
            ]
        );
    }

    #[test]
    fn accumulator_fills_directly_from_reader() {
        let mut bytes = Vec::new();
        WireCommand::size(1, 8).encode(&mut bytes).unwrap();
        WireCommand::data_words(&[99]).encode(&mut bytes).unwrap();
        let mut reader = bytes.as_slice();
        let mut acc = FrameAccumulator::new();
        // Tiny reads split frames arbitrarily.
        let mut frames = Vec::new();
        loop {
            let n = acc.fill_from(&mut reader, 3).unwrap();
            while let Some((k, p)) = acc.next_frame().unwrap() {
                frames.push(WireCommand::decode(k, p).unwrap());
            }
            if n == 0 {
                break;
            }
        }
        assert_eq!(
            frames,
            vec![WireCommand::size(1, 8), WireCommand::data_words(&[99])]
        );
        assert!(!acc.mid_frame());
    }

    #[test]
    fn accumulator_reports_mid_frame() {
        let mut buf = Vec::new();
        WireCommand::data_words(&[1, 2]).encode(&mut buf).unwrap();
        let mut acc = FrameAccumulator::new();
        acc.push(&buf[..7]);
        assert_eq!(acc.next_frame().unwrap(), None);
        assert!(acc.mid_frame());
    }

    #[test]
    fn shared_payloads_are_zero_copy_and_counted() {
        // Two Data frames through the mux API: the payload pieces must
        // alias the rope (no copies counted), and the legacy Vec API on the
        // same stream must count its copies.
        let words: Vec<u64> = (0..100).collect();
        let mut buf = Vec::new();
        WireCommand::data_words(&words).encode(&mut buf).unwrap();
        WireCommand::data_words(&words)
            .encode_on(3, &mut buf)
            .unwrap();

        let mut acc = FrameAccumulator::new();
        acc.push(&buf);
        let (k, ch, p) = acc.next_frame_mux().unwrap().unwrap();
        assert_eq!((k, ch), (kind::DATA, 0));
        assert_eq!(
            WireCommand::decode(k, p).unwrap(),
            WireCommand::data_words(&words)
        );
        let (k, ch, p) = acc.next_frame_mux().unwrap().unwrap();
        assert_eq!((k, ch), (kind::DATA, 3));
        assert_eq!(p.len(), 800);
        assert_eq!(acc.data_frames(), 2);
        assert_eq!(acc.payload_copies(), 0);

        let mut acc = FrameAccumulator::new();
        acc.push(&buf);
        let _ = acc.next_frame().unwrap().unwrap();
        let _ = acc.next_frame().unwrap().unwrap();
        assert_eq!(acc.payload_copies(), 2);
    }

    #[test]
    fn payload_spanning_chunks_is_pieced_not_copied() {
        // A chunk far smaller than the payload forces the rope to span:
        // the payload comes back as several pieces whose bytes match.
        let words: Vec<u64> = (500..600).collect();
        let mut buf = Vec::new();
        WireCommand::data_words(&words)
            .encode_on(2, &mut buf)
            .unwrap();
        let mut acc = FrameAccumulator::with_chunk_size(64);
        let mut reader = buf.as_slice();
        loop {
            let n = acc.fill_from(&mut reader, 64).unwrap();
            if n == 0 {
                break;
            }
        }
        let (k, ch, p) = acc.next_frame_mux().unwrap().unwrap();
        assert_eq!((k, ch), (kind::DATA, 2));
        assert!(p.pieces().count() > 1, "must span chunks");
        assert!(p.contiguous().is_none());
        let mut expect = Vec::new();
        for w in &words {
            expect.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(p.to_vec(), expect);
        assert_eq!(acc.payload_copies(), 0);
    }

    #[test]
    fn rope_reuses_its_tail_chunk_once_payloads_drop() {
        let mut acc = FrameAccumulator::with_chunk_size(4096);
        for round in 0..50u64 {
            let mut buf = Vec::new();
            WireCommand::data_words(&[round; 16])
                .encode_on(1, &mut buf)
                .unwrap();
            acc.push(&buf);
            let (_, _, p) = acc.next_frame_mux().unwrap().unwrap();
            assert_eq!(p.len(), 128);
            drop(p); // releases the chunk for rewind-in-place
        }
        assert!(!acc.mid_frame());
        assert!(
            acc.chunks.len() <= 1,
            "dropped payloads must let the rope rewind, not grow"
        );
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any mix of v1 and v2 frames, delivered in arbitrary splits, must
        /// decode to the same (channel, command) sequence it encoded.
        #[test]
        fn mixed_v1_v2_frames_interleave_on_one_stream(
            chans in proptest::collection::vec(0u16..5, 1..12),
            lens in proptest::collection::vec(0usize..40, 1..12),
            split in 1usize..40,
        ) {
            let frames: Vec<(u16, Vec<u64>)> = chans
                .iter()
                .zip(lens.iter().cycle())
                .enumerate()
                .map(|(i, (&ch, &len))| {
                    let words: Vec<u64> = (0..len as u64)
                        .map(|j| (i as u64) << 32 | j.wrapping_mul(0x9E37_79B9))
                        .collect();
                    (ch, words)
                })
                .collect();
            let mut buf = Vec::new();
            for (ch, words) in &frames {
                WireCommand::data_words(words).encode_on(*ch, &mut buf).unwrap();
            }
            let mut acc = FrameAccumulator::with_chunk_size(97);
            let mut decoded = Vec::new();
            for part in buf.chunks(split) {
                acc.push(part);
                while let Some((k, ch, p)) = acc.next_frame_mux().unwrap() {
                    decoded.push((ch, WireCommand::decode(k, p).unwrap()));
                }
            }
            prop_assert!(!acc.mid_frame());
            let expect: Vec<(u16, WireCommand)> = frames
                .iter()
                .map(|(ch, words)| (*ch, WireCommand::data_words(words)))
                .collect();
            prop_assert_eq!(decoded, expect);
        }
    }
}
