//! DMA word packing and the transfer-validation checksum.
//!
//! Bulk document data moves as little-endian 64-bit words (the
//! HyperTransport DMA granularity); the final word is zero-padded and the
//! exact byte length travels out-of-band in the Size command. The hardware
//! echoes an XOR checksum of the received words with Query Result so the
//! host can verify the transfer (§4).

/// Pack bytes into little-endian 64-bit words, zero-padding the tail.
pub fn pack_words(doc: &[u8]) -> Vec<u64> {
    doc.chunks(8)
        .map(|c| {
            let mut b = [0u8; 8];
            b[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(b)
        })
        .collect()
}

/// XOR checksum over 64-bit words (§4: "the hardware sends an xor data
/// checksum ... used to verify a valid document transfer").
pub fn xor_checksum(words: &[u64]) -> u64 {
    words.iter().fold(0u64, |acc, &w| acc ^ w)
}

/// Unpack little-endian words back to bytes, truncated to `bytes` (drops
/// the final word's zero padding).
pub fn unpack_bytes(words: &[u64], bytes: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.truncate(bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_pads_final_word() {
        let words = pack_words(b"ABCDEFGHIJ"); // 10 bytes -> 2 words
        assert_eq!(words.len(), 2);
        assert_eq!(words[0], u64::from_le_bytes(*b"ABCDEFGH"));
        assert_eq!(words[1], u64::from_le_bytes([b'I', b'J', 0, 0, 0, 0, 0, 0]));
    }

    #[test]
    fn checksum_is_xor() {
        assert_eq!(xor_checksum(&[]), 0);
        assert_eq!(xor_checksum(&[0xFF, 0x0F]), 0xF0);
        assert_eq!(xor_checksum(&[42, 42]), 0);
    }

    proptest! {
        /// pack → unpack is the identity on any document.
        #[test]
        fn pack_unpack_roundtrip(doc in proptest::collection::vec(any::<u8>(), 0..300)) {
            let words = pack_words(&doc);
            prop_assert_eq!(unpack_bytes(&words, doc.len()), doc);
        }
    }
}
