//! The original Cavnar–Trenkle (1994) method with **mixed-length** n-grams.
//!
//! The paper's hardware fixes `n = 4`; Cavnar & Trenkle's original text
//! categorizer extracts n-grams of every length 1–5 from white-space-
//! delimited words padded with markers (`_TEXT_`), ranks the top ~300, and
//! classifies by out-of-place distance. Mguesser descends from this design.
//! We carry the faithful variant so the benches can quantify what the
//! hardware's fixed-length simplification costs (empirically: little, which
//! is why HAIL and this paper could fix n = 4).

use lc_ngram::alphabet::{fold_byte, SPACE_CODE};
use std::collections::HashMap;

/// Default profile length (Cavnar–Trenkle use ~300).
pub const CLASSIC_PROFILE_LEN: usize = 300;

/// A mixed-length n-gram, stored as its padded text (≤ 5 bytes + pad).
pub type MixedGram = Vec<u8>;

/// Extract Cavnar–Trenkle mixed-length n-grams (lengths 1–5) from text:
/// words are runs of letters (after alphabet folding), padded with `_` on
/// both sides; every n-gram of every length 1..=5 of the padded word is
/// emitted.
pub fn extract_mixed(text: &[u8]) -> Vec<MixedGram> {
    let mut grams = Vec::new();
    let mut word: Vec<u8> = Vec::with_capacity(16);
    let flush = |word: &mut Vec<u8>, grams: &mut Vec<MixedGram>| {
        if word.is_empty() {
            return;
        }
        // Pad: "_WORD_" (single leading and trailing marker, per CT).
        let mut padded = Vec::with_capacity(word.len() + 2);
        padded.push(b'_');
        padded.extend_from_slice(word);
        padded.push(b'_');
        for n in 1..=5usize {
            if padded.len() >= n {
                for w in padded.windows(n) {
                    grams.push(w.to_vec());
                }
            }
        }
        word.clear();
    };
    for &b in text {
        let code = fold_byte(b);
        if code == SPACE_CODE {
            flush(&mut word, &mut grams);
        } else {
            word.push(b'A' + code - 1);
        }
    }
    flush(&mut word, &mut grams);
    grams
}

/// A ranked mixed-length profile.
#[derive(Clone, Debug)]
pub struct MixedProfile {
    /// gram -> rank (0 = most frequent).
    ranks: HashMap<MixedGram, u32>,
    len: usize,
}

impl MixedProfile {
    /// Build the top-`t` ranked profile of a document set.
    pub fn build<'a, I: IntoIterator<Item = &'a [u8]>>(docs: I, t: usize) -> Self {
        let mut counts: HashMap<MixedGram, u64> = HashMap::new();
        for d in docs {
            for g in extract_mixed(d) {
                *counts.entry(g).or_insert(0) += 1;
            }
        }
        let mut entries: Vec<(MixedGram, u64)> = counts.into_iter().collect();
        entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(t);
        let len = entries.len();
        let ranks = entries
            .into_iter()
            .enumerate()
            .map(|(i, (g, _))| (g, i as u32))
            .collect();
        Self { ranks, len }
    }

    /// Profile length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rank of a gram, if present.
    pub fn rank(&self, g: &[u8]) -> Option<u32> {
        self.ranks.get(g).copied()
    }

    /// Out-of-place distance from a document profile (also rank-ordered).
    pub fn out_of_place(&self, doc: &MixedProfile) -> u64 {
        let max = self.len as u64;
        let mut doc_entries: Vec<(&MixedGram, u32)> =
            doc.ranks.iter().map(|(g, &r)| (g, r)).collect();
        doc_entries.sort_unstable_by_key(|&(_, r)| r);
        doc_entries
            .iter()
            .map(|(g, doc_rank)| match self.rank(g) {
                Some(r) => (i64::from(r) - i64::from(*doc_rank)).unsigned_abs(),
                None => max,
            })
            .sum()
    }
}

/// The original Cavnar–Trenkle classifier: mixed-length ranked profiles.
#[derive(Clone, Debug)]
pub struct ClassicCavnarTrenkle {
    names: Vec<String>,
    profiles: Vec<MixedProfile>,
    doc_profile_len: usize,
}

impl ClassicCavnarTrenkle {
    /// Train from named document sets.
    ///
    /// # Panics
    ///
    /// Panics if `training` is empty.
    pub fn train(training: &[(String, Vec<&[u8]>)], t: usize) -> Self {
        assert!(!training.is_empty(), "need at least one language");
        let mut names = Vec::with_capacity(training.len());
        let mut profiles = Vec::with_capacity(training.len());
        for (name, docs) in training {
            names.push(name.clone());
            profiles.push(MixedProfile::build(docs.iter().copied(), t));
        }
        Self {
            names,
            profiles,
            doc_profile_len: t,
        }
    }

    /// Language names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Distances of a document to every language.
    pub fn distances(&self, text: &[u8]) -> Vec<u64> {
        let doc = MixedProfile::build([text], self.doc_profile_len);
        self.profiles.iter().map(|p| p.out_of_place(&doc)).collect()
    }

    /// Index of the closest language.
    pub fn classify(&self, text: &[u8]) -> usize {
        self.distances(text)
            .iter()
            .enumerate()
            .min_by_key(|&(_, d)| d)
            .map(|(i, _)| i)
            .expect("at least one language")
    }

    /// Name of the closest language.
    pub fn identify(&self, text: &[u8]) -> &str {
        &self.names[self.classify(text)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_corpus::{Corpus, CorpusConfig};

    #[test]
    fn mixed_extraction_shapes() {
        let grams = extract_mixed(b"cat");
        // "_CAT_": lengths 1..=5 -> 5 + 4 + 3 + 2 + 1 = 15 windows.
        assert_eq!(grams.len(), 15);
        assert!(grams.contains(&b"_".to_vec()));
        assert!(grams.contains(&b"_CAT".to_vec()));
        assert!(grams.contains(&b"_CAT_".to_vec()));
        assert!(grams.contains(&b"AT_".to_vec()));
    }

    #[test]
    fn folding_applies_before_padding() {
        let a = extract_mixed(b"CAT");
        let b = extract_mixed(b"cat");
        let c = extract_mixed(&[b'c', 0xE1, b't']); // cát
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn multiple_words_split_on_nonletters() {
        let grams = extract_mixed(b"a b");
        // Two one-letter words: "_A_" and "_B_", 6 windows each.
        assert_eq!(grams.len(), 12);
    }

    #[test]
    fn empty_and_nonletter_input() {
        assert!(extract_mixed(b"").is_empty());
        assert!(extract_mixed(b"123 ,.!").is_empty());
    }

    #[test]
    fn classic_ct_classifies_synthetic_corpus() {
        let corpus = Corpus::generate(CorpusConfig::test_scale());
        let split = corpus.split();
        let training: Vec<(String, Vec<&[u8]>)> = corpus
            .languages()
            .iter()
            .map(|&l| {
                (
                    l.code().to_string(),
                    split.train(l).map(|d| d.text.as_slice()).collect(),
                )
            })
            .collect();
        let ct = ClassicCavnarTrenkle::train(&training, CLASSIC_PROFILE_LEN);
        let mut correct = 0usize;
        let mut total = 0usize;
        for d in split.test_all().take(40) {
            total += 1;
            correct += usize::from(ct.classify(&d.text) == d.language.index());
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "classic CT accuracy {acc:.2}");
    }

    #[test]
    fn out_of_place_zero_against_self() {
        let p = MixedProfile::build([b"some words for a profile here".as_slice()], 100);
        assert_eq!(p.out_of_place(&p), 0);
    }
}
