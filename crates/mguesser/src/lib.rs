//! # lc-mguesser — the software baseline
//!
//! The paper benchmarks against **Mguesser** (mnogosearch), "an optimized
//! version of the n-gram based text categorization algorithm [Cavnar &
//! Trenkle 1994]", measuring 5.5 MB/s on a 2.4 GHz Opteron with ten
//! languages over 81 MB of cached documents.
//!
//! This crate implements that algorithm class in Rust:
//!
//! * [`CavnarTrenkle`] — the classic rank-order method: build a ranked
//!   n-gram frequency profile of the document, compare it to each language's
//!   ranked profile with the *out-of-place* distance, pick the minimum. This
//!   is the method Mguesser implements (hashed profiles of up to ~4096
//!   n-grams).
//! * [`classic::ClassicCavnarTrenkle`] — the original 1994 method with
//!   mixed-length (1–5) padded word n-grams, for quantifying what the
//!   hardware's fixed `n = 4` costs.
//! * [`HashSetClassifier`] — a faster software variant using the same
//!   match-count scoring as the hardware (set membership per n-gram),
//!   provided so benches can separate "algorithm" from "implementation
//!   quality" when comparing software vs simulated hardware.
//!
//! Absolute throughput on a modern CPU is far above 2007's 5.5 MB/s;
//! EXPERIMENTS.md reports both our measured numbers and the paper's, and the
//! hardware/software comparison keeps the paper's published baseline
//! alongside ours.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classic;

pub use classic::{ClassicCavnarTrenkle, MixedProfile, CLASSIC_PROFILE_LEN};

use lc_ngram::{NGramCounter, NGramProfile, NGramSpec, RankedProfile};

/// Default document-profile size used when ranking a document before the
/// out-of-place comparison (Cavnar–Trenkle use ~300; Mguesser-era tools use
/// more; this is a parameter).
pub const DEFAULT_DOC_PROFILE: usize = 400;

/// The Cavnar–Trenkle rank-order classifier.
#[derive(Clone, Debug)]
pub struct CavnarTrenkle {
    names: Vec<String>,
    profiles: Vec<RankedProfile>,
    spec: NGramSpec,
    doc_profile_size: usize,
}

impl CavnarTrenkle {
    /// Build from named language profiles (rank order is the profile's
    /// frequency order).
    ///
    /// # Panics
    ///
    /// Panics if `named` is empty or shapes are inconsistent.
    pub fn from_profiles(named: &[(String, NGramProfile)]) -> Self {
        assert!(!named.is_empty(), "need at least one language");
        let spec = named[0].1.spec();
        let mut names = Vec::with_capacity(named.len());
        let mut profiles = Vec::with_capacity(named.len());
        for (name, p) in named {
            assert_eq!(p.spec(), spec, "profile n-gram shape mismatch");
            names.push(name.clone());
            profiles.push(RankedProfile::from_profile(p));
        }
        Self {
            names,
            profiles,
            spec,
            doc_profile_size: DEFAULT_DOC_PROFILE,
        }
    }

    /// Set the document profile size (top-N document n-grams compared).
    pub fn with_doc_profile_size(mut self, n: usize) -> Self {
        assert!(n > 0, "document profile size must be positive");
        self.doc_profile_size = n;
        self
    }

    /// Language names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Out-of-place distances of a document to every language (lower =
    /// closer).
    pub fn distances(&self, text: &[u8]) -> Vec<u64> {
        let mut counter = NGramCounter::new(self.spec);
        counter.add_document(text);
        let doc_profile = counter.top_t(self.doc_profile_size);
        self.profiles
            .iter()
            .map(|p| p.out_of_place(&doc_profile))
            .collect()
    }

    /// Index of the closest language.
    pub fn classify(&self, text: &[u8]) -> usize {
        self.distances(text)
            .iter()
            .enumerate()
            .min_by_key(|&(_, d)| d)
            .map(|(i, _)| i)
            .expect("at least one language")
    }

    /// Name of the closest language.
    pub fn identify(&self, text: &[u8]) -> &str {
        &self.names[self.classify(text)]
    }
}

/// Software match-count classifier over hash sets (same scoring rule as the
/// hardware, pure-software implementation).
#[derive(Clone, Debug)]
pub struct HashSetClassifier {
    names: Vec<String>,
    sets: Vec<std::collections::HashSet<u64>>,
    spec: NGramSpec,
}

impl HashSetClassifier {
    /// Build from named profiles.
    ///
    /// # Panics
    ///
    /// Panics if `named` is empty or shapes are inconsistent.
    pub fn from_profiles(named: &[(String, NGramProfile)]) -> Self {
        assert!(!named.is_empty(), "need at least one language");
        let spec = named[0].1.spec();
        let mut names = Vec::with_capacity(named.len());
        let mut sets = Vec::with_capacity(named.len());
        for (name, p) in named {
            assert_eq!(p.spec(), spec, "profile n-gram shape mismatch");
            names.push(name.clone());
            sets.push(p.ngrams().map(|g| g.value()).collect());
        }
        Self { names, sets, spec }
    }

    /// Language names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Per-language match counts and total n-grams.
    pub fn classify(&self, text: &[u8]) -> (Vec<u64>, u64) {
        let extractor = lc_ngram::NGramExtractor::new(self.spec);
        let mut grams = Vec::new();
        extractor.extract_into(text, &mut grams);
        let mut counts = vec![0u64; self.sets.len()];
        for g in &grams {
            for (c, s) in counts.iter_mut().zip(&self.sets) {
                if s.contains(&g.value()) {
                    *c += 1;
                }
            }
        }
        (counts, grams.len() as u64)
    }

    /// Winning language name (argmax of match counts, lowest index wins
    /// ties).
    pub fn identify(&self, text: &[u8]) -> &str {
        let (counts, _) = self.classify(text);
        let mut best = 0;
        for (i, &c) in counts.iter().enumerate() {
            if c > counts[best] {
                best = i;
            }
        }
        &self.names[best]
    }
}

/// The paper's measured Mguesser throughput, for Table 4 comparisons.
pub const PAPER_MGUESSER_MB_S: f64 = 5.5;

#[cfg(test)]
mod tests {
    use super::*;
    use lc_corpus::{Corpus, CorpusConfig};

    fn trained() -> (Vec<(String, NGramProfile)>, Corpus) {
        let corpus = Corpus::generate(CorpusConfig::test_scale());
        let split = corpus.split();
        let named: Vec<(String, NGramProfile)> = corpus
            .languages()
            .iter()
            .map(|&l| {
                let docs: Vec<&[u8]> = split.train(l).map(|d| d.text.as_slice()).collect();
                (
                    l.code().to_string(),
                    NGramProfile::build(NGramSpec::PAPER, docs, 2000),
                )
            })
            .collect();
        (named, corpus)
    }

    #[test]
    fn cavnar_trenkle_classifies_synthetic_corpus_well() {
        let (named, corpus) = trained();
        let ct = CavnarTrenkle::from_profiles(&named);
        let mut correct = 0usize;
        let mut total = 0usize;
        for d in corpus.split().test_all().take(60) {
            total += 1;
            if ct.classify(&d.text) == d.language.index() {
                correct += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "CT accuracy too low: {acc:.2}");
    }

    #[test]
    fn hashset_classifier_matches_ct_on_clear_documents() {
        let (named, corpus) = trained();
        let ct = CavnarTrenkle::from_profiles(&named);
        let hs = HashSetClassifier::from_profiles(&named);
        let mut agree = 0usize;
        let mut total = 0usize;
        for d in corpus.split().test_all().take(40) {
            total += 1;
            if ct.identify(&d.text) == hs.identify(&d.text) {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / total as f64 > 0.85,
            "methods disagree too often: {agree}/{total}"
        );
    }

    #[test]
    fn distances_are_lower_for_true_language() {
        let (named, corpus) = trained();
        let ct = CavnarTrenkle::from_profiles(&named);
        let d = corpus.split().test_all().next().unwrap();
        let dist = ct.distances(&d.text);
        let own = dist[d.language.index()];
        let min = *dist.iter().min().unwrap();
        assert_eq!(own, min, "true language should minimize distance");
    }

    #[test]
    fn doc_profile_size_is_configurable() {
        let (named, _) = trained();
        let ct = CavnarTrenkle::from_profiles(&named).with_doc_profile_size(50);
        // Still classifies; smaller profile = coarser but functional.
        let _ = ct.classify(b"the committee shall deliver its opinion on the draft measures");
    }

    #[test]
    #[should_panic(expected = "at least one language")]
    fn empty_profiles_rejected() {
        let _ = CavnarTrenkle::from_profiles(&[]);
    }
}
