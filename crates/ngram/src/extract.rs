//! Sliding-window n-gram extraction.
//!
//! The paper (§3.3): *"An input word containing multiple translated
//! characters is buffered and an n-gram is generated at each character
//! position."* and *"Our implementation is currently oblivious to word
//! boundaries and simply treats the input as a continuous stream of
//! characters."*
//!
//! Two extractors are provided:
//!
//! * [`NGramExtractor`] — whole-buffer extraction: yields one packed n-gram
//!   per input position starting at position `n - 1` (the window must fill
//!   before the first n-gram emerges, exactly like the hardware shift
//!   register warming up).
//! * [`StreamingExtractor`] — carries the shift-register state across chunk
//!   boundaries, so feeding a document in arbitrary 64-bit-word-sized pieces
//!   (as the DMA engine does) yields the identical n-gram sequence.
//!
//! Both support **sub-sampling**: testing only every `s`-th n-gram, the
//! bandwidth-saving fallback the paper inherits from HAIL (§3.3, §5.2).

use crate::alphabet::fold_byte;
use crate::ngram::{NGram, NGramSpec};
use crate::simd::{self, BLOCK_BUF, BLOCK_LANES};

/// Receiver for [`StreamingExtractor::feed_blocks`]: grams arrive either as
/// full blocks of [`BLOCK_LANES`] consecutive packed values (oldest first,
/// each already masked to the spec's width) or as singles for the stretches
/// a block cannot cover — warm-up remainders, sub-sampled streams, tails
/// shorter than a block, and specs wider than a `u32` lane. Concatenating
/// blocks and singles in call order reproduces [`StreamingExtractor::feed_with`]
/// exactly; consumers whose per-gram effect commutes (Bloom count
/// accumulation) are free to process blocks out of band.
pub trait GramBlockSink {
    /// A full block of [`BLOCK_LANES`] consecutive grams.
    fn block(&mut self, grams: &[u32; BLOCK_LANES]);
    /// A single gram (the scalar edges of the stream).
    fn gram(&mut self, gram: NGram);
}

/// Whole-buffer sliding-window extractor.
#[derive(Clone, Copy, Debug)]
pub struct NGramExtractor {
    spec: NGramSpec,
    /// Emit every `subsample`-th n-gram (1 = all of them, the default).
    subsample: usize,
}

impl NGramExtractor {
    /// Extractor emitting every n-gram (the paper's primary configuration).
    pub fn new(spec: NGramSpec) -> Self {
        Self { spec, subsample: 1 }
    }

    /// Extractor emitting only every `s`-th n-gram (HAIL-style sub-sampling).
    ///
    /// # Panics
    ///
    /// Panics if `s == 0`.
    pub fn with_subsampling(spec: NGramSpec, s: usize) -> Self {
        assert!(s >= 1, "subsample factor must be >= 1");
        Self { spec, subsample: s }
    }

    /// The n-gram shape in use.
    pub fn spec(&self) -> NGramSpec {
        self.spec
    }

    /// The sub-sampling factor.
    pub fn subsample(&self) -> usize {
        self.subsample
    }

    /// Extract all (sub-sampled) n-grams of `text` (raw ISO-8859-1 bytes) into
    /// `out`, clearing it first. Returns the number of n-grams produced.
    ///
    /// Reserves exactly [`Self::count_for_len`] slots, so a fresh vector is
    /// sized precisely and a reused workhorse buffer never reallocates
    /// mid-extraction. Runs on the one streaming hot loop
    /// ([`StreamingExtractor::feed_with`]) — whole-buffer extraction is the
    /// single-chunk special case.
    pub fn extract_into(&self, text: &[u8], out: &mut Vec<NGram>) -> usize {
        out.clear();
        out.reserve(self.count_for_len(text.len()));
        self.streaming().feed(text, out)
    }

    /// A [`StreamingExtractor`] carrying this extractor's full configuration
    /// (n-gram shape **and** sub-sampling factor).
    pub fn streaming(&self) -> StreamingExtractor {
        StreamingExtractor::with_subsampling(self.spec, self.subsample)
    }

    /// Convenience: extract into a fresh vector.
    pub fn extract(&self, text: &[u8]) -> Vec<NGram> {
        let mut out = Vec::new();
        self.extract_into(text, &mut out);
        out
    }

    /// Number of n-grams a `len`-byte input produces (before sub-sampling
    /// this is `len - n + 1`; the paper equates bytes and n-grams because
    /// every byte past the warm-up yields one).
    pub fn count_for_len(&self, len: usize) -> usize {
        let n = self.spec.n();
        if len < n {
            0
        } else {
            (len - n + 1).div_ceil(self.subsample)
        }
    }
}

/// Streaming extractor: identical output to [`NGramExtractor`] no matter how
/// the input is chunked. This mirrors the hardware, where the DMA engine
/// delivers 64-bit words and the shift register never "sees" chunk
/// boundaries.
#[derive(Clone, Debug)]
pub struct StreamingExtractor {
    spec: NGramSpec,
    subsample: usize,
    state: u64,
    /// Folded characters consumed so far in the current document.
    chars_seen: usize,
    phase: usize,
}

impl StreamingExtractor {
    /// Create a streaming extractor with no sub-sampling.
    pub fn new(spec: NGramSpec) -> Self {
        Self::with_subsampling(spec, 1)
    }

    /// The n-gram shape this extractor emits.
    pub fn spec(&self) -> NGramSpec {
        self.spec
    }

    /// The sub-sampling factor.
    pub fn subsample(&self) -> usize {
        self.subsample
    }

    /// Create a streaming extractor emitting every `s`-th n-gram.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0`.
    pub fn with_subsampling(spec: NGramSpec, s: usize) -> Self {
        assert!(s >= 1, "subsample factor must be >= 1");
        Self {
            spec,
            subsample: s,
            state: 0,
            chars_seen: 0,
            phase: 0,
        }
    }

    /// Feed a chunk, pushing each produced n-gram into `sink` as it emerges
    /// from the shift register — **the** extraction hot loop. No buffer
    /// sits between folding and the sink, so a caller that probes a filter
    /// bank per gram fuses extraction and classification into one pass.
    ///
    /// [`Self::feed`] (Vec-collecting) and the whole-buffer
    /// [`NGramExtractor::extract_into`] are thin wrappers over this.
    #[inline]
    pub fn feed_with<F: FnMut(NGram)>(&mut self, chunk: &[u8], mut sink: F) {
        let n = self.spec.n();
        let mask = self.spec.mask();
        let mut rest = chunk;
        // Warm up: the first n-1 characters of a document emit nothing.
        while self.chars_seen + 1 < n {
            let Some((&b, tail)) = rest.split_first() else {
                return;
            };
            self.state = ((self.state << 5) | u64::from(fold_byte(b))) & mask;
            self.chars_seen += 1;
            rest = tail;
        }
        self.chars_seen += rest.len();
        if self.subsample == 1 {
            // The paper's primary configuration: one n-gram per byte, no
            // phase bookkeeping in the loop.
            for &b in rest {
                self.state = ((self.state << 5) | u64::from(fold_byte(b))) & mask;
                sink(NGram(self.state));
            }
        } else {
            for &b in rest {
                self.state = ((self.state << 5) | u64::from(fold_byte(b))) & mask;
                if self.phase == 0 {
                    sink(NGram(self.state));
                }
                self.phase += 1;
                if self.phase == self.subsample {
                    self.phase = 0;
                }
            }
        }
    }

    /// Feed a chunk, handing grams to `sink` in blocks of [`BLOCK_LANES`]
    /// where possible — the vector-friendly twin of [`Self::feed_with`],
    /// emitting the identical gram sequence for any chunking.
    ///
    /// Blocking applies only to the paper's primary shape (`n ≤ 6`, so a
    /// gram fits a 32-bit lane, and no sub-sampling); anything else falls
    /// back to the scalar loop, delivered through [`GramBlockSink::gram`].
    /// Warm-up bytes, chunk joins, and tails shorter than a block are
    /// handled scalar too, so `KeySource` semantics are unchanged.
    #[inline]
    pub fn feed_blocks(&mut self, chunk: &[u8], sink: &mut impl GramBlockSink) {
        let n = self.spec.n();
        if n > 6 || self.subsample != 1 {
            self.feed_with(chunk, |g| sink.gram(g));
            return;
        }
        let mask = self.spec.mask();
        let mut rest = chunk;
        // Warm up scalar, exactly like feed_with: the first n-1 characters
        // of a document emit nothing.
        while self.chars_seen + 1 < n {
            let Some((&b, tail)) = rest.split_first() else {
                return;
            };
            self.state = ((self.state << 5) | u64::from(fold_byte(b))) & mask;
            self.chars_seen += 1;
            rest = tail;
        }
        self.chars_seen += rest.len();
        let use_avx2 = simd::avx2_enabled();
        let mut state = self.state;
        let mut buf = [0u8; BLOCK_BUF];
        let mut out = [0u32; BLOCK_LANES];
        let mut blocks = rest.chunks_exact(BLOCK_LANES);
        for block in &mut blocks {
            // The n-1 carried codes live in the state's low bits (most
            // recent at distance 0); lay them oldest-first before the
            // block's fresh codes so lane j's window is buf[j..j + n].
            for d in 0..n - 1 {
                buf[n - 2 - d] = ((state >> (5 * d)) & 31) as u8;
            }
            for (c, &b) in buf[n - 1..n - 1 + BLOCK_LANES].iter_mut().zip(block) {
                *c = fold_byte(b);
            }
            simd::assemble_block(&buf, n, mask as u32, &mut out, use_avx2);
            // The last lane holds the newest n codes — exactly the shift
            // register after consuming the block (mask is 5n bits).
            state = u64::from(out[BLOCK_LANES - 1]);
            sink.block(&out);
        }
        for &b in blocks.remainder() {
            state = ((state << 5) | u64::from(fold_byte(b))) & mask;
            sink.gram(NGram(state));
        }
        self.state = state;
    }

    /// Feed a chunk, appending produced n-grams to `out` (not cleared).
    /// Returns the number of n-grams appended.
    pub fn feed(&mut self, chunk: &[u8], out: &mut Vec<NGram>) -> usize {
        let before = out.len();
        self.feed_with(chunk, |g| out.push(g));
        out.len() - before
    }

    /// Reset for a new document (the hardware's End-of-Document clears the
    /// shift register).
    pub fn reset(&mut self) {
        self.state = 0;
        self.chars_seen = 0;
        self.phase = 0;
    }

    /// Total characters consumed since the last reset.
    pub fn chars_seen(&self) -> usize {
        self.chars_seen
    }

    /// Total n-grams emitted since the last reset. Closed-form from the
    /// consumed length (streaming output is chunking-invariant), so fused
    /// sinks need no side counter: equals
    /// `NGramExtractor::count_for_len(chars_seen)`.
    pub fn grams_emitted(&self) -> usize {
        let n = self.spec.n();
        if self.chars_seen < n {
            0
        } else {
            (self.chars_seen - n + 1).div_ceil(self.subsample)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec4() -> NGramSpec {
        NGramSpec::new(4)
    }

    #[test]
    fn short_input_yields_nothing() {
        let ex = NGramExtractor::new(spec4());
        assert!(ex.extract(b"abc").is_empty());
        assert!(ex.extract(b"").is_empty());
        assert_eq!(ex.extract(b"abcd").len(), 1);
    }

    #[test]
    fn one_ngram_per_position() {
        let ex = NGramExtractor::new(spec4());
        let grams = ex.extract(b"hello world");
        assert_eq!(grams.len(), 11 - 4 + 1);
        // First window is "hell", second "ello".
        assert_eq!(spec4().render(grams[0]), "HELL");
        assert_eq!(spec4().render(grams[1]), "ELLO");
        // Window crossing the space keeps the space code.
        assert_eq!(spec4().render(grams[4]), "O WO");
    }

    #[test]
    fn case_and_accents_fold_before_windowing() {
        let ex = NGramExtractor::new(spec4());
        let a = ex.extract(b"CAFE");
        let b = ex.extract(&[b'c', b'a', b'f', 0xE9]); // "café" in Latin-1
        assert_eq!(a, b);
    }

    #[test]
    fn count_for_len_matches_extraction() {
        for s in [1usize, 2, 3, 4] {
            let ex = NGramExtractor::with_subsampling(spec4(), s);
            for len in 0..40 {
                let text: Vec<u8> = (0..len).map(|i| b'a' + (i % 26) as u8).collect();
                let grams = ex.extract(&text);
                assert_eq!(grams.len(), ex.count_for_len(len), "len={len}, s={s}");
                // The streaming extractor's closed-form emission count
                // agrees with what was actually emitted.
                let mut st = ex.streaming();
                let mut out = Vec::new();
                st.feed(&text, &mut out);
                assert_eq!(st.grams_emitted(), grams.len(), "len={len}, s={s}");
            }
        }
    }

    #[test]
    fn subsampling_takes_every_sth() {
        let full = NGramExtractor::new(spec4()).extract(b"abcdefghij");
        let half = NGramExtractor::with_subsampling(spec4(), 2).extract(b"abcdefghij");
        let expected: Vec<_> = full.iter().copied().step_by(2).collect();
        assert_eq!(half, expected);
    }

    #[test]
    fn streaming_reset_starts_fresh_document() {
        let mut ex = StreamingExtractor::new(spec4());
        let mut out = Vec::new();
        ex.feed(b"abcdef", &mut out);
        ex.reset();
        let mut out2 = Vec::new();
        ex.feed(b"abcdef", &mut out2);
        // After reset the second document yields the same grams from scratch.
        assert_eq!(out, out2);
        assert_eq!(ex.chars_seen(), 6);
    }

    #[test]
    fn streaming_does_not_bridge_documents_without_reset_awareness() {
        // Feeding two documents *without* reset bridges the boundary —
        // exactly what the hardware avoids via End-of-Document. This test
        // pins the behaviour difference.
        let mut ex = StreamingExtractor::new(spec4());
        let mut bridged = Vec::new();
        ex.feed(b"abcd", &mut bridged);
        ex.feed(b"wxyz", &mut bridged);
        assert_eq!(bridged.len(), 5); // 1 + 4 (bridging windows)
        let mut ex2 = StreamingExtractor::new(spec4());
        let mut clean = Vec::new();
        ex2.feed(b"abcd", &mut clean);
        ex2.reset();
        ex2.feed(b"wxyz", &mut clean);
        assert_eq!(clean.len(), 2);
    }

    proptest! {
        /// Chunked streaming output equals whole-buffer output for any
        /// chunking of any input.
        #[test]
        fn streaming_equals_whole_buffer(
            text in proptest::collection::vec(any::<u8>(), 0..200),
            cuts in proptest::collection::vec(0usize..200, 0..8),
            n in 1usize..=8,
            s in 1usize..=4,
        ) {
            let spec = NGramSpec::new(n);
            let whole = NGramExtractor::with_subsampling(spec, s).extract(&text);

            let mut cut_points: Vec<usize> =
                cuts.into_iter().map(|c| c % (text.len() + 1)).collect();
            cut_points.push(0);
            cut_points.push(text.len());
            cut_points.sort_unstable();
            cut_points.dedup();

            let mut streamed = Vec::new();
            let mut ex = StreamingExtractor::with_subsampling(spec, s);
            for w in cut_points.windows(2) {
                ex.feed(&text[w[0]..w[1]], &mut streamed);
            }
            prop_assert_eq!(ex.grams_emitted(), streamed.len());
            prop_assert_eq!(streamed, whole);
        }

        /// The fused sink entry (which `feed` and `extract_into` now wrap,
        /// so they cannot serve as a cross-check) emits exactly the grams
        /// an independently coded reference produces: for each position
        /// `i >= n-1`, fold and pack bytes `i-n+1..=i` from scratch, then
        /// take every `s`-th window. Pins values, not just counts, across
        /// arbitrary chunk boundaries.
        #[test]
        fn feed_with_matches_independent_reference(
            text in proptest::collection::vec(any::<u8>(), 0..200),
            cuts in proptest::collection::vec(0usize..200, 0..8),
            n in 1usize..=8,
            s in 1usize..=4,
        ) {
            let spec = NGramSpec::new(n);
            let reference: Vec<NGram> = (0..text.len().saturating_sub(n - 1))
                .step_by(s)
                .map(|start| {
                    let mut v = 0u64;
                    for &b in &text[start..start + n] {
                        v = (v << 5) | u64::from(fold_byte(b));
                    }
                    NGram(v)
                })
                .collect();

            let mut cut_points: Vec<usize> =
                cuts.into_iter().map(|c| c % (text.len() + 1)).collect();
            cut_points.push(0);
            cut_points.push(text.len());
            cut_points.sort_unstable();
            cut_points.dedup();

            let mut sunk = Vec::new();
            let mut ex = StreamingExtractor::with_subsampling(spec, s);
            for w in cut_points.windows(2) {
                ex.feed_with(&text[w[0]..w[1]], |g| sunk.push(g));
            }
            prop_assert_eq!(sunk, reference);
            prop_assert_eq!(ex.chars_seen(), text.len());
        }

        /// The blocked feed emits the identical gram sequence to the scalar
        /// feed for any input, any chunking (splits straddle both 8-lane
        /// blocks and n-gram windows), every blockable and unblockable n,
        /// and every sub-sampling factor — on whichever assembly path this
        /// machine dispatches to.
        #[test]
        fn feed_blocks_matches_feed_with(
            text in proptest::collection::vec(any::<u8>(), 0..300),
            cuts in proptest::collection::vec(0usize..300, 0..10),
            n in 1usize..=8,
            s in 1usize..=4,
        ) {
            struct Collect(Vec<NGram>);
            impl GramBlockSink for Collect {
                fn block(&mut self, grams: &[u32; BLOCK_LANES]) {
                    self.0.extend(grams.iter().map(|&g| NGram(u64::from(g))));
                }
                fn gram(&mut self, gram: NGram) {
                    self.0.push(gram);
                }
            }

            let spec = NGramSpec::new(n);
            let mut expected = Vec::new();
            let mut scalar = StreamingExtractor::with_subsampling(spec, s);
            scalar.feed_with(&text, |g| expected.push(g));

            let mut cut_points: Vec<usize> =
                cuts.into_iter().map(|c| c % (text.len() + 1)).collect();
            cut_points.push(0);
            cut_points.push(text.len());
            cut_points.sort_unstable();
            cut_points.dedup();

            let mut sunk = Collect(Vec::new());
            let mut ex = StreamingExtractor::with_subsampling(spec, s);
            for w in cut_points.windows(2) {
                ex.feed_blocks(&text[w[0]..w[1]], &mut sunk);
            }
            prop_assert_eq!(sunk.0, expected);
            prop_assert_eq!(ex.chars_seen(), text.len());
            prop_assert_eq!(ex.grams_emitted(), scalar.grams_emitted());
        }

        /// Every produced gram fits in the spec's bit width.
        #[test]
        fn grams_within_mask(text in proptest::collection::vec(any::<u8>(), 0..100),
                             n in 1usize..=12) {
            let spec = NGramSpec::new(n);
            for g in NGramExtractor::new(spec).extract(&text) {
                prop_assert!(g.value() <= spec.mask());
            }
        }
    }
}
