//! Sliding-window n-gram extraction.
//!
//! The paper (§3.3): *"An input word containing multiple translated
//! characters is buffered and an n-gram is generated at each character
//! position."* and *"Our implementation is currently oblivious to word
//! boundaries and simply treats the input as a continuous stream of
//! characters."*
//!
//! Two extractors are provided:
//!
//! * [`NGramExtractor`] — whole-buffer extraction: yields one packed n-gram
//!   per input position starting at position `n - 1` (the window must fill
//!   before the first n-gram emerges, exactly like the hardware shift
//!   register warming up).
//! * [`StreamingExtractor`] — carries the shift-register state across chunk
//!   boundaries, so feeding a document in arbitrary 64-bit-word-sized pieces
//!   (as the DMA engine does) yields the identical n-gram sequence.
//!
//! Both support **sub-sampling**: testing only every `s`-th n-gram, the
//! bandwidth-saving fallback the paper inherits from HAIL (§3.3, §5.2).

use crate::alphabet::fold_byte;
use crate::ngram::{NGram, NGramSpec};

/// Whole-buffer sliding-window extractor.
#[derive(Clone, Copy, Debug)]
pub struct NGramExtractor {
    spec: NGramSpec,
    /// Emit every `subsample`-th n-gram (1 = all of them, the default).
    subsample: usize,
}

impl NGramExtractor {
    /// Extractor emitting every n-gram (the paper's primary configuration).
    pub fn new(spec: NGramSpec) -> Self {
        Self { spec, subsample: 1 }
    }

    /// Extractor emitting only every `s`-th n-gram (HAIL-style sub-sampling).
    ///
    /// # Panics
    ///
    /// Panics if `s == 0`.
    pub fn with_subsampling(spec: NGramSpec, s: usize) -> Self {
        assert!(s >= 1, "subsample factor must be >= 1");
        Self { spec, subsample: s }
    }

    /// The n-gram shape in use.
    pub fn spec(&self) -> NGramSpec {
        self.spec
    }

    /// The sub-sampling factor.
    pub fn subsample(&self) -> usize {
        self.subsample
    }

    /// Extract all (sub-sampled) n-grams of `text` (raw ISO-8859-1 bytes) into
    /// `out`, clearing it first. Returns the number of n-grams produced.
    ///
    /// Allocation-free when `out` has capacity (workhorse-buffer pattern).
    pub fn extract_into(&self, text: &[u8], out: &mut Vec<NGram>) -> usize {
        out.clear();
        let n = self.spec.n();
        if text.len() < n {
            return 0;
        }
        out.reserve(text.len() / self.subsample + 1);
        let mask = self.spec.mask();
        let mut state = 0u64;
        // Warm up the shift register with the first n-1 characters.
        for &b in &text[..n - 1] {
            state = (state << 5) | u64::from(fold_byte(b));
        }
        let mut phase = 0usize;
        for &b in &text[n - 1..] {
            state = ((state << 5) | u64::from(fold_byte(b))) & mask;
            if phase == 0 {
                out.push(NGram(state));
            }
            phase += 1;
            if phase == self.subsample {
                phase = 0;
            }
        }
        out.len()
    }

    /// Convenience: extract into a fresh vector.
    pub fn extract(&self, text: &[u8]) -> Vec<NGram> {
        let mut out = Vec::new();
        self.extract_into(text, &mut out);
        out
    }

    /// Number of n-grams a `len`-byte input produces (before sub-sampling
    /// this is `len - n + 1`; the paper equates bytes and n-grams because
    /// every byte past the warm-up yields one).
    pub fn count_for_len(&self, len: usize) -> usize {
        let n = self.spec.n();
        if len < n {
            0
        } else {
            (len - n + 1).div_ceil(self.subsample)
        }
    }
}

/// Streaming extractor: identical output to [`NGramExtractor`] no matter how
/// the input is chunked. This mirrors the hardware, where the DMA engine
/// delivers 64-bit words and the shift register never "sees" chunk
/// boundaries.
#[derive(Clone, Debug)]
pub struct StreamingExtractor {
    spec: NGramSpec,
    subsample: usize,
    state: u64,
    /// Folded characters consumed so far in the current document.
    chars_seen: usize,
    phase: usize,
}

impl StreamingExtractor {
    /// Create a streaming extractor with no sub-sampling.
    pub fn new(spec: NGramSpec) -> Self {
        Self::with_subsampling(spec, 1)
    }

    /// The n-gram shape this extractor emits.
    pub fn spec(&self) -> NGramSpec {
        self.spec
    }

    /// Create a streaming extractor emitting every `s`-th n-gram.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0`.
    pub fn with_subsampling(spec: NGramSpec, s: usize) -> Self {
        assert!(s >= 1, "subsample factor must be >= 1");
        Self {
            spec,
            subsample: s,
            state: 0,
            chars_seen: 0,
            phase: 0,
        }
    }

    /// Feed a chunk, appending produced n-grams to `out` (not cleared).
    /// Returns the number of n-grams appended.
    pub fn feed(&mut self, chunk: &[u8], out: &mut Vec<NGram>) -> usize {
        let n = self.spec.n();
        let mask = self.spec.mask();
        let before = out.len();
        for &b in chunk {
            self.state = ((self.state << 5) | u64::from(fold_byte(b))) & mask;
            self.chars_seen += 1;
            if self.chars_seen >= n {
                if self.phase == 0 {
                    out.push(NGram(self.state));
                }
                self.phase += 1;
                if self.phase == self.subsample {
                    self.phase = 0;
                }
            }
        }
        out.len() - before
    }

    /// Reset for a new document (the hardware's End-of-Document clears the
    /// shift register).
    pub fn reset(&mut self) {
        self.state = 0;
        self.chars_seen = 0;
        self.phase = 0;
    }

    /// Total characters consumed since the last reset.
    pub fn chars_seen(&self) -> usize {
        self.chars_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec4() -> NGramSpec {
        NGramSpec::new(4)
    }

    #[test]
    fn short_input_yields_nothing() {
        let ex = NGramExtractor::new(spec4());
        assert!(ex.extract(b"abc").is_empty());
        assert!(ex.extract(b"").is_empty());
        assert_eq!(ex.extract(b"abcd").len(), 1);
    }

    #[test]
    fn one_ngram_per_position() {
        let ex = NGramExtractor::new(spec4());
        let grams = ex.extract(b"hello world");
        assert_eq!(grams.len(), 11 - 4 + 1);
        // First window is "hell", second "ello".
        assert_eq!(spec4().render(grams[0]), "HELL");
        assert_eq!(spec4().render(grams[1]), "ELLO");
        // Window crossing the space keeps the space code.
        assert_eq!(spec4().render(grams[4]), "O WO");
    }

    #[test]
    fn case_and_accents_fold_before_windowing() {
        let ex = NGramExtractor::new(spec4());
        let a = ex.extract(b"CAFE");
        let b = ex.extract(&[b'c', b'a', b'f', 0xE9]); // "café" in Latin-1
        assert_eq!(a, b);
    }

    #[test]
    fn count_for_len_matches_extraction() {
        for s in [1usize, 2, 3] {
            let ex = NGramExtractor::with_subsampling(spec4(), s);
            for len in 0..40 {
                let text: Vec<u8> = (0..len).map(|i| b'a' + (i % 26) as u8).collect();
                assert_eq!(
                    ex.extract(&text).len(),
                    ex.count_for_len(len),
                    "len={len}, s={s}"
                );
            }
        }
    }

    #[test]
    fn subsampling_takes_every_sth() {
        let full = NGramExtractor::new(spec4()).extract(b"abcdefghij");
        let half = NGramExtractor::with_subsampling(spec4(), 2).extract(b"abcdefghij");
        let expected: Vec<_> = full.iter().copied().step_by(2).collect();
        assert_eq!(half, expected);
    }

    #[test]
    fn streaming_reset_starts_fresh_document() {
        let mut ex = StreamingExtractor::new(spec4());
        let mut out = Vec::new();
        ex.feed(b"abcdef", &mut out);
        ex.reset();
        let mut out2 = Vec::new();
        ex.feed(b"abcdef", &mut out2);
        // After reset the second document yields the same grams from scratch.
        assert_eq!(out, out2);
        assert_eq!(ex.chars_seen(), 6);
    }

    #[test]
    fn streaming_does_not_bridge_documents_without_reset_awareness() {
        // Feeding two documents *without* reset bridges the boundary —
        // exactly what the hardware avoids via End-of-Document. This test
        // pins the behaviour difference.
        let mut ex = StreamingExtractor::new(spec4());
        let mut bridged = Vec::new();
        ex.feed(b"abcd", &mut bridged);
        ex.feed(b"wxyz", &mut bridged);
        assert_eq!(bridged.len(), 5); // 1 + 4 (bridging windows)
        let mut ex2 = StreamingExtractor::new(spec4());
        let mut clean = Vec::new();
        ex2.feed(b"abcd", &mut clean);
        ex2.reset();
        ex2.feed(b"wxyz", &mut clean);
        assert_eq!(clean.len(), 2);
    }

    proptest! {
        /// Chunked streaming output equals whole-buffer output for any
        /// chunking of any input.
        #[test]
        fn streaming_equals_whole_buffer(
            text in proptest::collection::vec(any::<u8>(), 0..200),
            cuts in proptest::collection::vec(0usize..200, 0..8),
            n in 1usize..=8,
            s in 1usize..=4,
        ) {
            let spec = NGramSpec::new(n);
            let whole = NGramExtractor::with_subsampling(spec, s).extract(&text);

            let mut cut_points: Vec<usize> =
                cuts.into_iter().map(|c| c % (text.len() + 1)).collect();
            cut_points.push(0);
            cut_points.push(text.len());
            cut_points.sort_unstable();
            cut_points.dedup();

            let mut streamed = Vec::new();
            let mut ex = StreamingExtractor::with_subsampling(spec, s);
            for w in cut_points.windows(2) {
                ex.feed(&text[w[0]..w[1]], &mut streamed);
            }
            prop_assert_eq!(streamed, whole);
        }

        /// Every produced gram fits in the spec's bit width.
        #[test]
        fn grams_within_mask(text in proptest::collection::vec(any::<u8>(), 0..100),
                             n in 1usize..=12) {
            let spec = NGramSpec::new(n);
            for g in NGramExtractor::new(spec).extract(&text) {
                prop_assert!(g.value() <= spec.mask());
            }
        }
    }
}
