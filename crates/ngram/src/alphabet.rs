//! The alphabet conversion module.
//!
//! The paper (§3.3): *"An alphabet conversion module translates 8-bit
//! extended ASCII characters (ISO-8859) into a 5-bit code similar to HAIL.
//! Lower case characters are converted to upper case, and accented characters
//! are mapped to their non-accented versions. All other characters are mapped
//! to a default white space code."*
//!
//! The 5-bit code space used here:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | white space (default for every non-letter) |
//! | 1–26 | `A`–`Z` |
//!
//! Codes 27–31 are unused, exactly as a 27-symbol alphabet in a 5-bit field.
//! The mapping is total over all 256 byte values, so the classifier is
//! oblivious to word boundaries and treats input as a continuous character
//! stream (§3.3).

/// Number of distinct folded symbols (space + 26 letters).
pub const ALPHABET_SIZE: u8 = 27;

/// The folded code for white space / any non-letter byte.
pub const SPACE_CODE: u8 = 0;

/// Bits per folded character in a packed n-gram.
pub const BITS_PER_CHAR: u32 = 5;

/// A folded 5-bit character code in `[0, ALPHABET_SIZE)`.
pub type FoldedChar = u8;

/// The 256-entry folding table, the software image of the hardware
/// conversion table stored in an embedded RAM.
static FOLD_TABLE: [u8; 256] = build_fold_table();

const fn letter(c: u8) -> u8 {
    c - b'A' + 1
}

const fn build_fold_table() -> [u8; 256] {
    let mut t = [SPACE_CODE; 256];
    // ASCII letters.
    let mut c = b'A';
    while c <= b'Z' {
        t[c as usize] = letter(c);
        t[(c + 32) as usize] = letter(c); // lower case folds to upper
        c += 1;
    }
    // ISO-8859-1 accented letters fold to their base letter. The upper-case
    // block is 0xC0..=0xDE and the lower-case block 0xE0..=0xFE with the same
    // base-letter layout, so fill both in one pass (offset 0x20).
    let mut i = 0;
    // (start, end inclusive, base letter) runs in the 0xC0 block.
    let runs: [(u8, u8, u8); 11] = [
        (0xC0, 0xC5, b'A'), // À Á Â Ã Ä Å
        (0xC6, 0xC6, b'A'), // Æ -> A (ligature folded to first letter)
        (0xC7, 0xC7, b'C'), // Ç
        (0xC8, 0xCB, b'E'), // È É Ê Ë
        (0xCC, 0xCF, b'I'), // Ì Í Î Ï
        (0xD1, 0xD1, b'N'), // Ñ
        (0xD2, 0xD6, b'O'), // Ò Ó Ô Õ Ö
        (0xD8, 0xD8, b'O'), // Ø
        (0xD9, 0xDC, b'U'), // Ù Ú Û Ü
        (0xDD, 0xDD, b'Y'), // Ý
        (0xDE, 0xDE, b'T'), // Þ (thorn) -> T, nearest Latin base
    ];
    while i < runs.len() {
        let (start, end, base) = runs[i];
        let mut c = start;
        while c <= end {
            t[c as usize] = letter(base);
            t[(c + 0x20) as usize] = letter(base); // lower-case block
            c += 1;
        }
        i += 1;
    }
    // 0xD0 Ð (eth) and 0xF0 ð: fold to D.
    t[0xD0] = letter(b'D');
    t[0xF0] = letter(b'D');
    // 0xDF ß (sharp s): folds to S. (0xFF is ÿ -> Y, handled below, not ß+0x20.)
    t[0xDF] = letter(b'S');
    // 0xFF ÿ -> Y.
    t[0xFF] = letter(b'Y');
    // 0xD7 × and 0xF7 ÷ are operators: stay at SPACE_CODE.
    t
}

/// Fold one ISO-8859-1 byte to its 5-bit code.
#[inline]
pub fn fold_byte(b: u8) -> FoldedChar {
    FOLD_TABLE[b as usize]
}

/// Fold a Unicode scalar: characters in the Latin-1 range fold via the table,
/// everything else becomes [`SPACE_CODE`] (the hardware only ever sees 8-bit
/// characters; this is the host-side preprocessing equivalent).
#[inline]
pub fn fold_char(c: char) -> FoldedChar {
    let cp = c as u32;
    if cp < 256 {
        fold_byte(cp as u8)
    } else {
        SPACE_CODE
    }
}

/// Whether a folded code is a letter (not white space).
#[inline]
pub fn is_letter_code(code: FoldedChar) -> bool {
    code != SPACE_CODE && code < ALPHABET_SIZE
}

/// Fold a byte slice in place into folded codes, reusing the output buffer
/// (the "workhorse buffer" pattern; no per-call allocation).
pub fn fold_into(input: &[u8], out: &mut Vec<FoldedChar>) {
    out.clear();
    out.reserve(input.len());
    out.extend(input.iter().map(|&b| fold_byte(b)));
}

/// Render a folded code back to a printable ASCII character (space or
/// upper-case letter) — for debugging and tests only; folding is lossy.
pub fn code_to_char(code: FoldedChar) -> char {
    match code {
        SPACE_CODE => ' ',
        1..=26 => (b'A' + code - 1) as char,
        _ => '?',
    }
}

/// Encode a UTF-8 string to ISO-8859-1 bytes, replacing characters outside
/// the Latin-1 range with a space. The corpus generator produces UTF-8; the
/// simulated hardware consumes ISO-8859-1, as in the paper.
pub fn utf8_to_latin1(s: &str) -> Vec<u8> {
    s.chars()
        .map(|c| {
            let cp = c as u32;
            if cp < 256 {
                cp as u8
            } else {
                b' '
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ascii_letters_fold_case_insensitively() {
        for c in b'a'..=b'z' {
            assert_eq!(fold_byte(c), fold_byte(c - 32), "case mismatch at {c}");
        }
        assert_eq!(fold_byte(b'A'), 1);
        assert_eq!(fold_byte(b'Z'), 26);
        assert_eq!(fold_byte(b'a'), 1);
        assert_eq!(fold_byte(b'z'), 26);
    }

    #[test]
    fn non_letters_fold_to_space() {
        for b in [
            b' ', b'\n', b'\t', b'0', b'9', b'.', b',', b'!', 0x00, 0x7F, 0xD7, 0xF7,
        ] {
            assert_eq!(fold_byte(b), SPACE_CODE, "byte {b:#x} should be space");
        }
    }

    #[test]
    fn accented_characters_fold_to_base_letters() {
        let cases: &[(u8, u8)] = &[
            (0xC9, b'E'), // É
            (0xE9, b'E'), // é
            (0xE8, b'E'), // è
            (0xE4, b'A'), // ä
            (0xC5, b'A'), // Å
            (0xE5, b'A'), // å
            (0xF6, b'O'), // ö
            (0xD8, b'O'), // Ø
            (0xF8, b'O'), // ø
            (0xFC, b'U'), // ü
            (0xE7, b'C'), // ç
            (0xF1, b'N'), // ñ
            (0xE3, b'A'), // ã
            (0xF5, b'O'), // õ
            (0xDF, b'S'), // ß
            (0xFF, b'Y'), // ÿ
            (0xF0, b'D'), // ð
        ];
        for &(byte, base) in cases {
            assert_eq!(
                fold_byte(byte),
                fold_byte(base),
                "byte {byte:#x} should fold like {}",
                base as char
            );
        }
    }

    #[test]
    fn upper_and_lower_accent_blocks_agree() {
        // Every accented upper-case letter in 0xC0..=0xDE folds the same as
        // its lower-case counterpart at +0x20, with the documented exceptions
        // (0xDF ß has no upper-case partner at -0x20 in Latin-1).
        for c in 0xC0u8..=0xDE {
            if c == 0xD7 {
                continue; // × operator
            }
            assert_eq!(
                fold_byte(c),
                fold_byte(c + 0x20),
                "block mismatch at {c:#x}"
            );
        }
    }

    #[test]
    fn fold_char_outside_latin1_is_space() {
        assert_eq!(fold_char('€'), SPACE_CODE);
        assert_eq!(fold_char('字'), SPACE_CODE);
        assert_eq!(fold_char('é'), fold_char('e'));
    }

    #[test]
    fn code_to_char_round_trips_letters() {
        for c in b'A'..=b'Z' {
            assert_eq!(code_to_char(fold_byte(c)), c as char);
        }
        assert_eq!(code_to_char(SPACE_CODE), ' ');
    }

    #[test]
    fn utf8_to_latin1_preserves_latin1_and_replaces_rest() {
        let s = "Café 字 øl";
        let bytes = utf8_to_latin1(s);
        assert_eq!(
            bytes,
            vec![b'C', b'a', b'f', 0xE9, b' ', b' ', b' ', 0xF8, b'l']
        );
    }

    #[test]
    fn fold_into_reuses_buffer() {
        let mut buf = Vec::with_capacity(64);
        fold_into(b"Hello, World!", &mut buf);
        assert_eq!(buf.len(), 13);
        let cap = buf.capacity();
        fold_into(b"abc", &mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.capacity(), cap, "buffer should be reused");
    }

    proptest! {
        /// Every byte folds to a valid code.
        #[test]
        fn all_codes_in_range(b in any::<u8>()) {
            prop_assert!(fold_byte(b) < ALPHABET_SIZE);
        }

        /// Folding is idempotent when viewed through code_to_char: folding the
        /// printable representation of a folded code gives the same code.
        #[test]
        fn folding_idempotent(b in any::<u8>()) {
            let code = fold_byte(b);
            let rendered = code_to_char(code);
            prop_assert_eq!(fold_char(rendered), code);
        }
    }
}
