//! N-gram frequency counting and top-t language profiles.
//!
//! The paper (§4): *"We use the top t = 5,000 most frequently occurring
//! n-grams from a language training set to generate a profile."* A profile is
//! a *set* for the Bloom-filter classifier (membership is all that matters)
//! and a *ranked list* for the Cavnar–Trenkle software baseline.

use crate::extract::NGramExtractor;
use crate::ngram::{NGram, NGramSpec};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast multiplicative hasher for packed n-gram keys. N-grams are already
/// well-mixed small integers and this is an internal (non-adversarial)
/// counting table, so we trade SipHash's DoS resistance for speed — the hot
/// path of profile building hashes every n-gram of the training set.
#[derive(Default)]
pub struct NGramKeyHasher(u64);

impl Hasher for NGramKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only used via write_u64 in practice; fold arbitrary bytes anyway.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }
}

/// `BuildHasher` for [`NGramKeyHasher`].
pub type NGramKeyBuildHasher = BuildHasherDefault<NGramKeyHasher>;

/// Streaming n-gram frequency counter.
#[derive(Clone, Debug)]
pub struct NGramCounter {
    spec: NGramSpec,
    extractor: NGramExtractor,
    counts: HashMap<u64, u64, NGramKeyBuildHasher>,
    total: u64,
    /// Workhorse buffer reused across documents.
    scratch: Vec<NGram>,
}

impl NGramCounter {
    /// New counter for the given n-gram shape.
    pub fn new(spec: NGramSpec) -> Self {
        Self {
            spec,
            extractor: NGramExtractor::new(spec),
            counts: HashMap::default(),
            total: 0,
            scratch: Vec::new(),
        }
    }

    /// Count all n-grams of a document (raw ISO-8859-1 bytes).
    pub fn add_document(&mut self, text: &[u8]) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.extractor.extract_into(text, &mut scratch);
        for g in &scratch {
            *self.counts.entry(g.value()).or_insert(0) += 1;
        }
        self.total += scratch.len() as u64;
        self.scratch = scratch;
    }

    /// Count a pre-extracted n-gram sequence.
    pub fn add_ngrams(&mut self, grams: &[NGram]) {
        for g in grams {
            *self.counts.entry(g.value()).or_insert(0) += 1;
        }
        self.total += grams.len() as u64;
    }

    /// Number of distinct n-grams seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total n-grams counted (with multiplicity).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for one n-gram.
    pub fn count(&self, g: NGram) -> u64 {
        self.counts.get(&g.value()).copied().unwrap_or(0)
    }

    /// The n-gram shape.
    pub fn spec(&self) -> NGramSpec {
        self.spec
    }

    /// Build the top-`t` profile. Ties at the cut-off are broken by packed
    /// value (ascending) so profile construction is fully deterministic.
    pub fn top_t(&self, t: usize) -> NGramProfile {
        // (count desc, value asc) ordering; select_nth avoids a full sort of
        // the distinct-gram population when t is much smaller.
        let mut entries: Vec<(u64, u64)> = self.counts.iter().map(|(&v, &c)| (v, c)).collect();
        let key = |e: &(u64, u64)| (std::cmp::Reverse(e.1), e.0);
        let t_eff = t.min(entries.len());
        if t_eff > 0 && t_eff < entries.len() {
            entries.select_nth_unstable_by_key(t_eff - 1, key);
        }
        entries.truncate(t_eff);
        entries.sort_unstable_by_key(key);
        NGramProfile {
            spec: self.spec,
            entries: entries
                .into_iter()
                .map(|(v, c)| ProfileEntry {
                    gram: NGram(v),
                    count: c,
                })
                .collect(),
            trained_total: self.total,
        }
    }
}

/// One profile entry: an n-gram and its training-set frequency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileEntry {
    /// The packed n-gram.
    pub gram: NGram,
    /// Its count in the training set.
    pub count: u64,
}

/// A language profile: the `t` most frequent n-grams of a training set,
/// ordered by descending frequency. This is what gets programmed into a
/// Bloom filter (as a set) or used by the rank-order baseline (as a list).
#[derive(Clone, Debug)]
pub struct NGramProfile {
    spec: NGramSpec,
    entries: Vec<ProfileEntry>,
    trained_total: u64,
}

impl NGramProfile {
    /// Build directly from documents: count then take the top `t`.
    pub fn build<'a, I: IntoIterator<Item = &'a [u8]>>(spec: NGramSpec, docs: I, t: usize) -> Self {
        let mut counter = NGramCounter::new(spec);
        for d in docs {
            counter.add_document(d);
        }
        counter.top_t(t)
    }

    /// The n-gram shape.
    pub fn spec(&self) -> NGramSpec {
        self.spec
    }

    /// Profile size (≤ requested `t`; smaller if the training set had fewer
    /// distinct n-grams).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in rank order (most frequent first).
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Iterator over the packed n-grams in rank order.
    pub fn ngrams(&self) -> impl Iterator<Item = NGram> + '_ {
        self.entries.iter().map(|e| e.gram)
    }

    /// Total n-grams in the training material this profile was built from.
    pub fn trained_total(&self) -> u64 {
        self.trained_total
    }

    /// Serialize to a simple length-prefixed binary stream:
    /// magic "LCNP", version u32, n u32, trained_total u64, count u64,
    /// then (gram u64, count u64) pairs — all little-endian. A dependency-
    /// free on-disk format for the CLI and for shipping profiles between
    /// host and (simulated) device.
    pub fn write_to<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(b"LCNP")?;
        w.write_all(&1u32.to_le_bytes())?;
        w.write_all(&(self.spec.n() as u32).to_le_bytes())?;
        w.write_all(&self.trained_total.to_le_bytes())?;
        w.write_all(&(self.entries.len() as u64).to_le_bytes())?;
        for e in &self.entries {
            w.write_all(&e.gram.value().to_le_bytes())?;
            w.write_all(&e.count.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialize a profile written by [`Self::write_to`].
    pub fn read_from<R: std::io::Read>(r: &mut R) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"LCNP" {
            return Err(Error::new(ErrorKind::InvalidData, "bad profile magic"));
        }
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        if u32::from_le_bytes(u32buf) != 1 {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "unsupported profile version",
            ));
        }
        r.read_exact(&mut u32buf)?;
        let n = u32::from_le_bytes(u32buf) as usize;
        if n == 0 || n > NGramSpec::MAX_N {
            return Err(Error::new(ErrorKind::InvalidData, "invalid n-gram length"));
        }
        let mut u64buf = [0u8; 8];
        r.read_exact(&mut u64buf)?;
        let trained_total = u64::from_le_bytes(u64buf);
        r.read_exact(&mut u64buf)?;
        let len = u64::from_le_bytes(u64buf);
        if len > 100_000_000 {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "implausible profile size",
            ));
        }
        let spec = NGramSpec::new(n);
        let mut entries = Vec::with_capacity(len as usize);
        let mut prev_count = u64::MAX;
        for _ in 0..len {
            r.read_exact(&mut u64buf)?;
            let gram = u64::from_le_bytes(u64buf);
            if gram > spec.mask() {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    "gram exceeds spec width",
                ));
            }
            r.read_exact(&mut u64buf)?;
            let count = u64::from_le_bytes(u64buf);
            if count > prev_count {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    "profile entries not in rank order",
                ));
            }
            prev_count = count;
            entries.push(ProfileEntry {
                gram: NGram(gram),
                count,
            });
        }
        Ok(Self {
            spec,
            entries,
            trained_total,
        })
    }

    /// Membership test against the profile as a set (reference semantics for
    /// the Bloom filter; O(len) — build a `HashSet` or Bloom filter for bulk
    /// testing).
    pub fn contains(&self, g: NGram) -> bool {
        self.entries.iter().any(|e| e.gram == g)
    }
}

/// A Cavnar–Trenkle style ranked profile with out-of-place distance.
///
/// Used by the `lc-mguesser` software baseline: classification picks the
/// language whose ranked profile has the smallest total rank displacement
/// relative to the document's own ranked profile.
#[derive(Clone, Debug)]
pub struct RankedProfile {
    spec: NGramSpec,
    /// gram -> rank (0 = most frequent).
    ranks: HashMap<u64, u32, NGramKeyBuildHasher>,
    len: usize,
}

impl RankedProfile {
    /// Build from an [`NGramProfile`] (which is already rank-ordered).
    pub fn from_profile(p: &NGramProfile) -> Self {
        let mut ranks = HashMap::default();
        for (i, e) in p.entries().iter().enumerate() {
            ranks.insert(e.gram.value(), i as u32);
        }
        Self {
            spec: p.spec(),
            len: p.len(),
            ranks,
        }
    }

    /// Profile length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The n-gram shape this profile was built from.
    pub fn spec(&self) -> NGramSpec {
        self.spec
    }

    /// Rank of an n-gram, if present.
    pub fn rank(&self, g: NGram) -> Option<u32> {
        self.ranks.get(&g.value()).copied()
    }

    /// Out-of-place distance between this profile and a document profile.
    /// Grams missing from this profile incur the maximum displacement
    /// (`self.len`), per Cavnar–Trenkle.
    pub fn out_of_place(&self, doc: &NGramProfile) -> u64 {
        let max = self.len as u64;
        doc.entries()
            .iter()
            .enumerate()
            .map(|(doc_rank, e)| match self.rank(e.gram) {
                Some(r) => (i64::from(r) - doc_rank as i64).unsigned_abs(),
                None => max,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec4() -> NGramSpec {
        NGramSpec::new(4)
    }

    #[test]
    fn counter_counts_with_multiplicity() {
        let mut c = NGramCounter::new(spec4());
        c.add_document(b"aaaaaa"); // 3 occurrences of AAAA
        let g = spec4().pack(&[1, 1, 1, 1]);
        assert_eq!(c.count(g), 3);
        assert_eq!(c.total(), 3);
        assert_eq!(c.distinct(), 1);
    }

    #[test]
    fn top_t_orders_by_count_then_value() {
        let mut c = NGramCounter::new(spec4());
        c.add_document(b"abcdabcdabcdxyzw");
        let p = c.top_t(3);
        assert_eq!(p.len(), 3);
        // ABCD occurs 3x and must be first.
        assert_eq!(spec4().render(p.entries()[0].gram), "ABCD");
        assert_eq!(p.entries()[0].count, 3);
        // Remaining counts are non-increasing.
        assert!(p.entries()[1].count >= p.entries()[2].count);
    }

    #[test]
    fn top_t_larger_than_population_returns_all() {
        let mut c = NGramCounter::new(spec4());
        c.add_document(b"abcde");
        let p = c.top_t(5000);
        assert_eq!(p.len(), 2); // ABCD, BCDE
    }

    #[test]
    fn top_t_zero_is_empty() {
        let mut c = NGramCounter::new(spec4());
        c.add_document(b"abcdef");
        assert!(c.top_t(0).is_empty());
    }

    #[test]
    fn profile_build_matches_manual_counter() {
        let docs: Vec<&[u8]> = vec![b"the quick brown fox", b"the lazy dog"];
        let p1 = NGramProfile::build(spec4(), docs.iter().copied(), 10);
        let mut c = NGramCounter::new(spec4());
        for d in &docs {
            c.add_document(d);
        }
        let p2 = c.top_t(10);
        assert_eq!(p1.entries(), p2.entries());
    }

    #[test]
    fn profile_contains_its_own_entries() {
        let p = NGramProfile::build(spec4(), [b"hello world hello".as_slice()], 8);
        for e in p.entries() {
            assert!(p.contains(e.gram));
        }
        assert!(!p.contains(NGram(0xF_FFFF))); // "____" with codes 31 — never extracted
    }

    #[test]
    fn ranked_profile_rank_matches_order() {
        let p = NGramProfile::build(spec4(), [b"abcdabcdxyzw".as_slice()], 10);
        let r = RankedProfile::from_profile(&p);
        for (i, e) in p.entries().iter().enumerate() {
            assert_eq!(r.rank(e.gram), Some(i as u32));
        }
    }

    #[test]
    fn out_of_place_zero_against_self() {
        let p = NGramProfile::build(spec4(), [b"some training text here".as_slice()], 50);
        let r = RankedProfile::from_profile(&p);
        assert_eq!(r.out_of_place(&p), 0);
    }

    #[test]
    fn out_of_place_penalizes_missing_grams() {
        let train = NGramProfile::build(spec4(), [b"aaaa bbbb cccc".as_slice()], 50);
        let r = RankedProfile::from_profile(&train);
        let other = NGramProfile::build(spec4(), [b"zzzz yyyy xxxx".as_slice()], 50);
        let d = r.out_of_place(&other);
        // Every doc gram is missing -> each costs len(train).
        assert_eq!(d, (train.len() as u64) * other.len() as u64);
    }

    #[test]
    fn profile_clone_is_structural() {
        let p = NGramProfile::build(spec4(), [b"serialize me please".as_slice()], 16);
        let clone = p.clone();
        assert_eq!(clone.entries(), p.entries());
        assert_eq!(clone.spec(), p.spec());
        assert_eq!(clone.trained_total(), p.trained_total());
    }

    #[test]
    fn binary_roundtrip() {
        let p = NGramProfile::build(
            spec4(),
            [b"the quick brown fox jumps over the lazy dog repeatedly".as_slice()],
            64,
        );
        let mut buf = Vec::new();
        p.write_to(&mut buf).unwrap();
        let q = NGramProfile::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(q.entries(), p.entries());
        assert_eq!(q.spec(), p.spec());
        assert_eq!(q.trained_total(), p.trained_total());
    }

    #[test]
    fn binary_rejects_corruption() {
        let p = NGramProfile::build(spec4(), [b"some profile text".as_slice()], 16);
        let mut buf = Vec::new();
        p.write_to(&mut buf).unwrap();

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(NGramProfile::read_from(&mut bad.as_slice()).is_err());

        // Bad version.
        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(NGramProfile::read_from(&mut bad.as_slice()).is_err());

        // Truncated stream.
        let bad = &buf[..buf.len() - 3];
        assert!(NGramProfile::read_from(&mut &bad[..]).is_err());

        // Out-of-width gram: set high bits in the first gram.
        let mut bad = buf.clone();
        let gram_off = 4 + 4 + 4 + 8 + 8;
        bad[gram_off + 7] = 0xFF;
        assert!(NGramProfile::read_from(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn binary_rejects_unsorted_entries() {
        let p = NGramProfile::build(spec4(), [b"abcd abcd xyzw".as_slice()], 8);
        let mut buf = Vec::new();
        p.write_to(&mut buf).unwrap();
        // Swap the counts of the first two entries to break rank order.
        let base = 4 + 4 + 4 + 8 + 8;
        if p.len() >= 2 {
            let c0: [u8; 8] = buf[base + 8..base + 16].try_into().unwrap();
            let c1: [u8; 8] = buf[base + 24..base + 32].try_into().unwrap();
            if u64::from_le_bytes(c0) != u64::from_le_bytes(c1) {
                buf[base + 8..base + 16].copy_from_slice(&c1);
                buf[base + 24..base + 32].copy_from_slice(&c0);
                assert!(NGramProfile::read_from(&mut buf.as_slice()).is_err());
            }
        }
    }

    proptest! {
        /// top_t equals a naive full sort with the same tie-break.
        #[test]
        fn top_t_matches_naive_sort(
            text in proptest::collection::vec(any::<u8>(), 0..400),
            t in 0usize..64,
        ) {
            let mut c = NGramCounter::new(spec4());
            c.add_document(&text);
            let fast = c.top_t(t);

            let mut naive: Vec<(u64, u64)> =
                c.counts.iter().map(|(&v, &n)| (v, n)).collect();
            naive.sort_unstable_by_key(|e| (std::cmp::Reverse(e.1), e.0));
            naive.truncate(t);
            let naive_grams: Vec<u64> = naive.iter().map(|e| e.0).collect();
            let fast_grams: Vec<u64> =
                fast.entries().iter().map(|e| e.gram.value()).collect();
            prop_assert_eq!(fast_grams, naive_grams);
        }

        /// Counter totals are additive over documents.
        #[test]
        fn totals_additive(a in proptest::collection::vec(any::<u8>(), 0..100),
                           b in proptest::collection::vec(any::<u8>(), 0..100)) {
            let mut c1 = NGramCounter::new(spec4());
            c1.add_document(&a);
            let t_a = c1.total();
            c1.add_document(&b);
            let mut c2 = NGramCounter::new(spec4());
            c2.add_document(&b);
            prop_assert_eq!(c1.total(), t_a + c2.total());
        }
    }
}
