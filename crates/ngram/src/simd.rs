//! Blocked n-gram window assembly: 8 packed grams per iteration.
//!
//! The scalar extraction loop is a serial dependency chain — every byte's
//! gram is the previous gram shifted and ORed, so the CPU cannot overlap
//! iterations. The blocked path breaks the chain: for a block of 8 input
//! bytes, gram `j` depends only on the `n` folded codes ending at position
//! `j`, all of which are known up front (the previous block's tail codes are
//! carried in the shift-register state). [`assemble_block`] therefore builds
//! all 8 windows from a small code buffer — with AVX2, `n` shifted 8-lane
//! ORs; without, a scalar per-lane fold — and the serial state update
//! collapses to "state = last gram".
//!
//! Like every SIMD path in this workspace the AVX2 branch is chosen once
//! per process ([`avx2_enabled`], honoring `LC_FORCE_SCALAR`) and the
//! scalar assembly is the always-available fallback and non-x86 path.

#![allow(unsafe_code)]

/// Lanes per assembled block (AVX2: eight 32-bit grams per 256-bit vector).
pub const BLOCK_LANES: usize = 8;

/// Code-buffer length for [`assemble_block`]: up to `n - 1 ≤ 5` carried
/// codes plus [`BLOCK_LANES`] fresh ones, padded to 16 so every 8-byte
/// lane load stays in bounds.
pub const BLOCK_BUF: usize = 16;

/// Whether blocked assembly may use AVX2 in this process. Decided once:
/// `LC_FORCE_SCALAR` (set, not `"0"`) forces the scalar path, otherwise
/// the CPU decides. Always `false` off x86-64.
pub fn avx2_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        if std::env::var_os("LC_FORCE_SCALAR").is_some_and(|v| v != "0") {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Assemble the 8 grams of one block. `buf[..n - 1]` holds the carried
/// codes (oldest first), `buf[n - 1..n - 1 + 8]` the block's fresh codes;
/// gram `j` packs `buf[j..j + n]` at 5 bits per code, masked to `mask`.
/// `use_avx2` must only be `true` when [`avx2_enabled`] returned `true`.
#[inline]
pub fn assemble_block(
    buf: &[u8; BLOCK_BUF],
    n: usize,
    mask: u32,
    out: &mut [u32; BLOCK_LANES],
    use_avx2: bool,
) {
    debug_assert!((1..=6).contains(&n), "blocked grams must fit u32 lanes");
    #[cfg(target_arch = "x86_64")]
    if use_avx2 {
        // safety: callers pass use_avx2 == true only under avx2_enabled(),
        // which verified the CPU feature for the life of the process.
        unsafe { assemble_block_avx2(buf, n, mask, out) };
        return;
    }
    let _ = use_avx2;
    assemble_block_scalar(buf, n, mask, out);
}

/// Scalar reference assembly (and the non-AVX2 path): fold each lane's
/// window independently. Still profits over the serial loop by removing
/// the loop-carried state dependency.
#[inline]
fn assemble_block_scalar(buf: &[u8; BLOCK_BUF], n: usize, mask: u32, out: &mut [u32; BLOCK_LANES]) {
    for (j, lane) in out.iter_mut().enumerate() {
        let mut v = 0u32;
        for &code in &buf[j..j + n] {
            v = (v << 5) | u32::from(code);
        }
        *lane = v & mask;
    }
}

/// AVX2 assembly: for each of the `n` window offsets, one 8-byte load of
/// consecutive codes widens to 8 u32 lanes, shifts into window position,
/// and ORs into the accumulator — `n` load/shift/OR triples per 8 grams,
/// no loop-carried dependency.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn assemble_block_avx2(buf: &[u8; BLOCK_BUF], n: usize, mask: u32, out: &mut [u32; BLOCK_LANES]) {
    use core::arch::x86_64::{
        _mm256_and_si256, _mm256_cvtepu8_epi32, _mm256_or_si256, _mm256_set1_epi32,
        _mm256_setzero_si256, _mm256_sll_epi32, _mm256_storeu_si256, _mm_cvtsi32_si128,
        _mm_loadl_epi64,
    };
    let mut acc = _mm256_setzero_si256();
    for t in 0..n {
        // safety: t ≤ n - 1 ≤ 5 and buf is BLOCK_BUF = 16 bytes, so the
        // 8-byte load at offset t reads buf[t..t + 8], inside the array.
        let lanes8 = unsafe { _mm_loadl_epi64(buf.as_ptr().add(t).cast()) };
        let lanes = _mm256_cvtepu8_epi32(lanes8);
        let shift = _mm_cvtsi32_si128((5 * (n - 1 - t)) as i32);
        acc = _mm256_or_si256(acc, _mm256_sll_epi32(lanes, shift));
    }
    let acc = _mm256_and_si256(acc, _mm256_set1_epi32(mask as i32));
    // safety: out is exactly 8 u32s = 32 bytes; storeu needs no alignment.
    unsafe { _mm256_storeu_si256(out.as_mut_ptr().cast(), acc) };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(buf: &[u8; BLOCK_BUF], n: usize, mask: u32) -> [u32; BLOCK_LANES] {
        std::array::from_fn(|j| {
            let mut v = 0u64;
            for &c in &buf[j..j + n] {
                v = (v << 5) | u64::from(c);
            }
            (v as u32) & mask
        })
    }

    #[test]
    fn scalar_assembly_matches_reference_for_all_n() {
        let mut buf = [0u8; BLOCK_BUF];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((i * 7 + 3) % 32) as u8;
        }
        for n in 1..=6usize {
            let mask = (1u32 << (5 * n)) - 1;
            let mut out = [0u32; BLOCK_LANES];
            assemble_block(&buf, n, mask, &mut out, false);
            assert_eq!(out, reference(&buf, n, mask), "n = {n}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_assembly_matches_scalar_on_avx2_hardware() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let mut buf = [0u8; BLOCK_BUF];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((i * 13 + 1) % 32) as u8;
        }
        for n in 1..=6usize {
            let mask = (1u32 << (5 * n)) - 1;
            let mut scalar = [0u32; BLOCK_LANES];
            let mut simd = [0u32; BLOCK_LANES];
            assemble_block(&buf, n, mask, &mut scalar, false);
            // safety: avx2 presence checked at the top of the test.
            unsafe { assemble_block_avx2(&buf, n, mask, &mut simd) };
            assert_eq!(simd, scalar, "n = {n}");
        }
    }
}
