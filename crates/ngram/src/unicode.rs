//! The 16-bit Unicode extension (§3.3).
//!
//! The paper: *"While our current implementation is limited to common
//! European languages representable with extended ASCII, it can be extended
//! to other encodings such as 16-bit Unicode that have a larger alphabet.
//! The hash functions of the Bloom Filter would simply operate on a larger
//! sized input n-gram, with the rest of the Bloom Filter remaining the
//! same."*
//!
//! This module implements that extension:
//!
//! * [`fold_scalar`] — the wide alphabet conversion: BMP letters keep their
//!   (case-folded, Latin-diacritic-folded) 16-bit code point; everything
//!   else folds to a single white-space code, mirroring the 5-bit module's
//!   behaviour.
//! * [`WideNGramSpec`] — n-grams packed at 16 bits per symbol; the paper's
//!   `n = 4` makes a 64-bit key, exactly the width the H3 hash accepts,
//!   which is the paper's point: only the hash input width changes.
//! * [`WideExtractor`] — sliding-window extraction over `char` streams.
//!
//! In contrast, a direct-lookup table over a 16-bit alphabet would need
//! `2^64` entries for 4-grams — "grows exponentially in the size of the
//! alphabet" — which is the argument for Bloom filters here.

use crate::alphabet::fold_byte;
use crate::ngram::NGram;

/// The wide white-space/other code (mirrors the 5-bit module's 0).
pub const WIDE_SPACE: u16 = 0;

/// Bits per folded wide symbol.
pub const WIDE_BITS_PER_CHAR: u32 = 16;

/// Fold a Unicode scalar to a 16-bit symbol:
///
/// * Latin-1 and Latin Extended letters fold through the same
///   case/diacritic rules as the 8-bit path (so ASCII text produces the
///   upper-case base letter codes `'A'..='Z'`).
/// * Other BMP alphabetic scalars are case-folded (simple uppercase) and
///   kept as their code point — Greek, Cyrillic, Hebrew, Arabic, CJK and
///   every other BMP script get distinct symbols.
/// * Everything else (digits, punctuation, controls, non-BMP) becomes
///   [`WIDE_SPACE`].
pub fn fold_scalar(c: char) -> u16 {
    let cp = c as u32;
    if cp < 0x100 {
        // Latin-1: reuse the hardware table, mapping the 5-bit letter code
        // back to its ASCII letter so wide and narrow paths agree on ASCII.
        let code = fold_byte(cp as u8);
        return if code == 0 {
            WIDE_SPACE
        } else {
            u16::from(b'A' + code - 1)
        };
    }
    if cp > 0xFFFF {
        return WIDE_SPACE; // the paper's extension is 16-bit Unicode (BMP)
    }
    if !c.is_alphabetic() {
        return WIDE_SPACE;
    }
    // Latin Extended A/B: strip to the base letter where the 8-bit
    // transliteration path knows one, to stay consistent with the narrow
    // classifier on European text.
    if (0x100..0x250).contains(&cp) {
        if let Some(base) = latin_ext_base(c) {
            return u16::from(base);
        }
    }
    // Simple case folding: use the first uppercase mapping when it is a
    // single BMP scalar; otherwise keep the scalar.
    let mut upper = c.to_uppercase();
    match (upper.next(), upper.next()) {
        (Some(u), None) if (u as u32) <= 0xFFFF => u as u16,
        _ => cp as u16,
    }
}

/// Base letter for Latin Extended scalars (subset sufficient for the
/// European languages in `lc-corpus`); `None` keeps the scalar.
fn latin_ext_base(c: char) -> Option<u8> {
    let up = c.to_uppercase().next().unwrap_or(c);
    Some(match up {
        'Ā' | 'Ă' | 'Ą' => b'A',
        'Ć' | 'Ĉ' | 'Ċ' | 'Č' => b'C',
        'Ď' | 'Đ' => b'D',
        'Ē' | 'Ĕ' | 'Ė' | 'Ę' | 'Ě' => b'E',
        'Ĝ' | 'Ğ' | 'Ġ' | 'Ģ' => b'G',
        'Ĥ' | 'Ħ' => b'H',
        'Ĩ' | 'Ī' | 'Ĭ' | 'Į' | 'İ' => b'I',
        'Ĵ' => b'J',
        'Ķ' => b'K',
        'Ĺ' | 'Ļ' | 'Ľ' | 'Ŀ' | 'Ł' => b'L',
        'Ń' | 'Ņ' | 'Ň' | 'Ŋ' => b'N',
        'Ō' | 'Ŏ' | 'Ő' | 'Œ' => b'O',
        'Ŕ' | 'Ŗ' | 'Ř' => b'R',
        'Ś' | 'Ŝ' | 'Ş' | 'Š' | 'Ș' => b'S',
        'Ţ' | 'Ť' | 'Ŧ' | 'Ț' => b'T',
        'Ũ' | 'Ū' | 'Ŭ' | 'Ů' | 'Ű' | 'Ų' => b'U',
        'Ŵ' => b'W',
        'Ŷ' => b'Y',
        'Ź' | 'Ż' | 'Ž' => b'Z',
        _ => return None,
    })
}

/// Wide n-gram shape: `n` symbols at 16 bits each packed in a `u64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WideNGramSpec {
    n: usize,
}

impl WideNGramSpec {
    /// Maximum window length (`4 × 16 = 64` bits).
    pub const MAX_N: usize = 4;

    /// The paper-equivalent configuration: 4-grams, 64-bit keys.
    pub const PAPER_WIDE: WideNGramSpec = WideNGramSpec { n: 4 };

    /// Create a wide spec.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 4`.
    pub fn new(n: usize) -> Self {
        assert!(
            (1..=Self::MAX_N).contains(&n),
            "n must be in 1..=4 for 16-bit symbols"
        );
        Self { n }
    }

    /// Window length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Packed width in bits (`16n`) — the H3 input width.
    pub fn bits(&self) -> u32 {
        self.n as u32 * WIDE_BITS_PER_CHAR
    }

    /// Mask covering the packed value.
    pub fn mask(&self) -> u64 {
        if self.bits() == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits()) - 1
        }
    }

    /// Pack a window (oldest first).
    ///
    /// # Panics
    ///
    /// Panics if `window.len() != n`.
    pub fn pack(&self, window: &[u16]) -> NGram {
        assert_eq!(window.len(), self.n);
        let mut v = 0u64;
        for &s in window {
            v = (v << WIDE_BITS_PER_CHAR) | u64::from(s);
        }
        NGram(v)
    }

    /// Unpack to symbols (oldest first).
    pub fn unpack(&self, g: NGram) -> Vec<u16> {
        let mut out = vec![0u16; self.n];
        let mut v = g.value();
        for slot in out.iter_mut().rev() {
            *slot = (v & 0xFFFF) as u16;
            v >>= WIDE_BITS_PER_CHAR;
        }
        out
    }

    /// Shift-register step.
    #[inline]
    pub fn shift(&self, state: u64, s: u16) -> u64 {
        ((state << WIDE_BITS_PER_CHAR) | u64::from(s)) & self.mask()
    }
}

/// Sliding-window extractor over Unicode text.
#[derive(Clone, Copy, Debug)]
pub struct WideExtractor {
    spec: WideNGramSpec,
    /// Emit every `subsample`-th n-gram (1 = all of them, the default) —
    /// the same HAIL-style bandwidth knob as the narrow extractor.
    subsample: usize,
}

impl WideExtractor {
    /// New extractor emitting every n-gram.
    pub fn new(spec: WideNGramSpec) -> Self {
        Self { spec, subsample: 1 }
    }

    /// Extractor emitting only every `s`-th n-gram.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0`.
    pub fn with_subsampling(spec: WideNGramSpec, s: usize) -> Self {
        assert!(s >= 1, "subsample factor must be >= 1");
        Self { spec, subsample: s }
    }

    /// The shape in use.
    pub fn spec(&self) -> WideNGramSpec {
        self.spec
    }

    /// The sub-sampling factor.
    pub fn subsample(&self) -> usize {
        self.subsample
    }

    /// Extract all (sub-sampled) wide n-grams of `text` into `out`
    /// (cleared first).
    pub fn extract_into(&self, text: &str, out: &mut Vec<NGram>) -> usize {
        out.clear();
        let n = self.spec.n;
        let mask = self.spec.mask();
        let mut state = 0u64;
        let mut seen = 0usize;
        let mut phase = 0usize;
        for c in text.chars() {
            state = ((state << WIDE_BITS_PER_CHAR) | u64::from(fold_scalar(c))) & mask;
            seen += 1;
            if seen >= n {
                if phase == 0 {
                    out.push(NGram(state));
                }
                phase += 1;
                if phase == self.subsample {
                    phase = 0;
                }
            }
        }
        out.len()
    }

    /// Convenience allocation variant.
    pub fn extract(&self, text: &str) -> Vec<NGram> {
        let mut out = Vec::new();
        self.extract_into(text, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ascii_agrees_with_narrow_path() {
        // On plain ASCII the wide symbols are the upper-case letters, so the
        // wide 4-grams of "word" spell WORD in 16-bit symbols.
        let spec = WideNGramSpec::PAPER_WIDE;
        let grams = WideExtractor::new(spec).extract("word");
        assert_eq!(grams.len(), 1);
        let syms = spec.unpack(grams[0]);
        assert_eq!(
            syms,
            vec![b'W' as u16, b'O' as u16, b'R' as u16, b'D' as u16]
        );
    }

    #[test]
    fn greek_and_cyrillic_get_distinct_symbols() {
        let a = fold_scalar('α'); // Greek alpha -> Α
        let b = fold_scalar('а'); // Cyrillic a -> А
        assert_ne!(a, b);
        assert_eq!(a, 'Α' as u16);
        assert_eq!(b, 'А' as u16);
        assert_ne!(a, WIDE_SPACE);
    }

    #[test]
    fn case_folding_across_scripts() {
        assert_eq!(fold_scalar('δ'), fold_scalar('Δ'));
        assert_eq!(fold_scalar('ж'), fold_scalar('Ж'));
        assert_eq!(fold_scalar('é'), fold_scalar('E'));
        assert_eq!(fold_scalar('š'), fold_scalar('S'));
        assert_eq!(fold_scalar('ș'), u16::from(b'S'));
    }

    #[test]
    fn cjk_symbols_survive() {
        assert_ne!(fold_scalar('語'), WIDE_SPACE);
        assert_ne!(fold_scalar('語'), fold_scalar('言'));
    }

    #[test]
    fn non_letters_fold_to_space() {
        for c in ['0', '9', '!', ' ', '\n', '€', '∑'] {
            assert_eq!(fold_scalar(c), WIDE_SPACE, "{c}");
        }
        // Non-BMP (astral) scalars fold to space in the 16-bit model.
        assert_eq!(fold_scalar('😀'), WIDE_SPACE);
        assert_eq!(fold_scalar('𝕏'), WIDE_SPACE);
    }

    #[test]
    fn four_gram_key_is_full_64_bits() {
        let spec = WideNGramSpec::PAPER_WIDE;
        assert_eq!(spec.bits(), 64);
        assert_eq!(spec.mask(), u64::MAX);
    }

    #[test]
    fn extraction_counts() {
        let ex = WideExtractor::new(WideNGramSpec::PAPER_WIDE);
        assert_eq!(ex.extract("").len(), 0);
        assert_eq!(ex.extract("abc").len(), 0);
        assert_eq!(ex.extract("abcd").len(), 1);
        assert_eq!(ex.extract("καλημέρα").len(), 8 - 3);
    }

    #[test]
    #[should_panic(expected = "n must be in 1..=4")]
    fn oversize_wide_n_rejected() {
        let _ = WideNGramSpec::new(5);
    }

    #[test]
    fn wide_subsampling_takes_every_sth() {
        let spec = WideNGramSpec::PAPER_WIDE;
        let text = "все люди рождаются свободными";
        let full = WideExtractor::new(spec).extract(text);
        for s in 2..=4 {
            let sub = WideExtractor::with_subsampling(spec, s).extract(text);
            let expected: Vec<_> = full.iter().copied().step_by(s).collect();
            assert_eq!(sub, expected, "s={s}");
        }
    }

    proptest! {
        #[test]
        fn pack_unpack_roundtrip(n in 1usize..=4,
                                 raw in proptest::collection::vec(any::<u16>(), 4)) {
            let spec = WideNGramSpec::new(n);
            let window = &raw[..n];
            let g = spec.pack(window);
            prop_assert_eq!(spec.unpack(g), window.to_vec());
        }

        #[test]
        fn shift_matches_pack(n in 1usize..=4,
                              raw in proptest::collection::vec(any::<u16>(), 4)) {
            let spec = WideNGramSpec::new(n);
            let window = &raw[..n];
            let mut state = 0u64;
            for &s in window {
                state = spec.shift(state, s);
            }
            prop_assert_eq!(state, spec.pack(window).value());
        }

        #[test]
        fn fold_total_over_chars(c in any::<char>()) {
            let _ = fold_scalar(c); // must never panic
        }
    }
}
