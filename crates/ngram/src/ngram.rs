//! Packed n-gram representation.
//!
//! A folded character is 5 bits; an n-gram of `n` characters is packed into a
//! `u64` with the **oldest character in the most significant position**, the
//! same layout a hardware shift register produces as characters stream in.
//! With the paper's `n = 4` an n-gram is a 20-bit value — the width of the
//! input to each H3 hash function.

use crate::alphabet::{code_to_char, FoldedChar, ALPHABET_SIZE, BITS_PER_CHAR};

/// Static description of an n-gram shape: the window length `n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NGramSpec {
    n: usize,
}

impl NGramSpec {
    /// Maximum window length such that `n * 5` bits fit in a `u64`.
    pub const MAX_N: usize = 12;

    /// The paper's configuration: 4-grams (20-bit packed values).
    pub const PAPER: NGramSpec = NGramSpec { n: 4 };

    /// Create a spec for `n`-grams.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_N`.
    pub fn new(n: usize) -> Self {
        assert!(
            (1..=Self::MAX_N).contains(&n),
            "n must be in 1..={}, got {n}",
            Self::MAX_N
        );
        Self { n }
    }

    /// Window length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total packed width in bits (`n * 5`).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.n as u32 * BITS_PER_CHAR
    }

    /// Mask covering the packed value.
    #[inline]
    pub fn mask(&self) -> u64 {
        (1u64 << self.bits()) - 1
    }

    /// Pack a window of folded characters (oldest first).
    ///
    /// # Panics
    ///
    /// Panics if `window.len() != n` or any code is out of range.
    pub fn pack(&self, window: &[FoldedChar]) -> NGram {
        assert_eq!(window.len(), self.n, "window length must equal n");
        let mut v = 0u64;
        for &c in window {
            assert!(c < ALPHABET_SIZE, "folded code {c} out of range");
            v = (v << BITS_PER_CHAR) | u64::from(c);
        }
        NGram(v)
    }

    /// Unpack an n-gram into folded characters (oldest first).
    pub fn unpack(&self, g: NGram) -> Vec<FoldedChar> {
        let mut out = vec![0u8; self.n];
        let mut v = g.0;
        for slot in out.iter_mut().rev() {
            *slot = (v & 0x1F) as u8;
            v >>= BITS_PER_CHAR;
        }
        out
    }

    /// Shift-register step: append `c` to `state`, dropping the oldest
    /// character. This is exactly the per-clock datapath operation.
    #[inline]
    pub fn shift(&self, state: u64, c: FoldedChar) -> u64 {
        ((state << BITS_PER_CHAR) | u64::from(c)) & self.mask()
    }

    /// Render an n-gram as printable text (spaces and upper-case letters).
    pub fn render(&self, g: NGram) -> String {
        self.unpack(g).into_iter().map(code_to_char).collect()
    }
}

/// A packed n-gram value. The shape (window length) lives in [`NGramSpec`];
/// this is just the payload handed to the hash functions — deliberately a
/// thin wrapper so hot loops stay allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NGram(pub u64);

impl NGram {
    /// The raw packed value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl From<u64> for NGram {
    fn from(v: u64) -> Self {
        NGram(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::fold_byte;
    use proptest::prelude::*;

    #[test]
    fn paper_spec_is_4_grams_20_bits() {
        assert_eq!(NGramSpec::PAPER.n(), 4);
        assert_eq!(NGramSpec::PAPER.bits(), 20);
        assert_eq!(NGramSpec::PAPER.mask(), 0xF_FFFF);
    }

    #[test]
    fn pack_layout_oldest_char_most_significant() {
        let spec = NGramSpec::new(4);
        // "ABCD" -> codes 1,2,3,4 -> 0b00001_00010_00011_00100
        let g = spec.pack(&[1, 2, 3, 4]);
        assert_eq!(g.value(), (1 << 15) | (2 << 10) | (3 << 5) | 4);
    }

    #[test]
    fn shift_matches_pack() {
        let spec = NGramSpec::new(4);
        let mut state = 0u64;
        for &c in &[1u8, 2, 3, 4] {
            state = spec.shift(state, c);
        }
        assert_eq!(state, spec.pack(&[1, 2, 3, 4]).value());
        // One more shift drops the oldest character.
        state = spec.shift(state, 5);
        assert_eq!(state, spec.pack(&[2, 3, 4, 5]).value());
    }

    #[test]
    fn render_round_trips_text() {
        let spec = NGramSpec::new(4);
        let window: Vec<u8> = b"WORD".iter().map(|&b| fold_byte(b)).collect();
        let g = spec.pack(&window);
        assert_eq!(spec.render(g), "WORD");
    }

    #[test]
    #[should_panic(expected = "n must be in 1..=")]
    fn zero_n_rejected() {
        let _ = NGramSpec::new(0);
    }

    #[test]
    #[should_panic(expected = "n must be in 1..=")]
    fn oversize_n_rejected() {
        let _ = NGramSpec::new(13);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn wrong_window_length_rejected() {
        let _ = NGramSpec::new(4).pack(&[1, 2, 3]);
    }

    proptest! {
        /// pack . unpack is the identity on valid windows.
        #[test]
        fn pack_unpack_roundtrip(n in 1usize..=12,
                                 raw in proptest::collection::vec(0u8..ALPHABET_SIZE, 12)) {
            let spec = NGramSpec::new(n);
            let window = &raw[..n];
            let g = spec.pack(window);
            prop_assert_eq!(spec.unpack(g), window.to_vec());
            prop_assert!(g.value() <= spec.mask());
        }

        /// Shifting n characters into an empty state equals packing them.
        #[test]
        fn n_shifts_equal_pack(n in 1usize..=12,
                               raw in proptest::collection::vec(0u8..ALPHABET_SIZE, 12)) {
            let spec = NGramSpec::new(n);
            let window = &raw[..n];
            let mut state = 0u64;
            for &c in window {
                state = spec.shift(state, c);
            }
            prop_assert_eq!(state, spec.pack(window).value());
        }
    }
}
