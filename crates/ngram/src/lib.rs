//! # lc-ngram — alphabet folding, n-gram extraction and language profiles
//!
//! This crate is the text-processing substrate of the reproduction:
//!
//! * [`alphabet`] — the paper's **alphabet conversion module**: 8-bit extended
//!   ASCII (ISO-8859-1) characters are folded to a 5-bit code. Lower-case
//!   letters are converted to upper case, accented characters are mapped to
//!   their non-accented base letter, and everything else becomes a single
//!   white-space code. In hardware this is a 256-entry table (or comparator
//!   and muxing logic, as in the paper); here it is a `const` 256-byte table.
//! * [`ngram`] — packed n-grams: a window of `n` folded characters packed at
//!   5 bits per character into a `u64` (the paper uses `n = 4`, i.e. 20-bit
//!   values). Pack/unpack round-trips are property-tested.
//! * [`extract`] — sliding-window extraction, one n-gram per input character
//!   exactly as the paper's shift-register datapath produces them, including
//!   a streaming extractor that carries window state across arbitrary chunk
//!   boundaries (the DMA stream delivers 64-bit words, not whole documents),
//!   and optional sub-sampling (the HAIL-style "test only every s-th n-gram"
//!   fallback discussed in §3.3/§5.2).
//! * [`profile`] — n-gram frequency counting and **top-t profiles** (the
//!   paper uses the `t = 5000` most frequent 4-grams of a training set), plus
//!   ranked profiles for the Cavnar–Trenkle baseline.
//! * [`unicode`] — the paper's §3.3 extension to 16-bit Unicode: wide folded
//!   symbols, 64-bit packed 4-grams, and extraction over `char` streams.

// deny (not forbid) so the dedicated `simd` module can opt back in for its
// AVX2 intrinsics; everything else in the crate stays compiler-enforced safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod extract;
pub mod ngram;
pub mod profile;
pub mod simd;
pub mod unicode;

pub use alphabet::{fold_byte, fold_char, is_letter_code, FoldedChar, ALPHABET_SIZE, SPACE_CODE};
pub use extract::{GramBlockSink, NGramExtractor, StreamingExtractor};
pub use ngram::{NGram, NGramSpec};
pub use profile::{NGramCounter, NGramProfile, RankedProfile};
pub use simd::BLOCK_LANES;
pub use unicode::{WideExtractor, WideNGramSpec};
