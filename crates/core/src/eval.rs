//! Evaluation harness: confusion matrices, accuracy, and margin statistics.
//!
//! The paper reports (§5.1) per-corpus classification accuracy between
//! 99.05% and 99.76% (average 99.45%) for the conservative configuration,
//! and studies accuracy degradation across Bloom parameters (Table 1). This
//! module computes those quantities for any classifier that maps a document
//! to a language index.

use rayon::prelude::*;

/// A p×p confusion matrix: `matrix[truth][predicted]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    labels: Vec<String>,
    matrix: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Empty matrix over the given labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn new(labels: Vec<String>) -> Self {
        assert!(!labels.is_empty(), "need at least one label");
        let p = labels.len();
        Self {
            labels,
            matrix: vec![vec![0u64; p]; p],
        }
    }

    /// Record one classification outcome.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        self.matrix[truth][predicted] += 1;
    }

    /// Merge another matrix (same labels) into this one.
    ///
    /// # Panics
    ///
    /// Panics if labels differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.labels, other.labels, "label mismatch");
        for (row, orow) in self.matrix.iter_mut().zip(&other.matrix) {
            for (c, oc) in row.iter_mut().zip(orow) {
                *c += oc;
            }
        }
    }

    /// Labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Raw cell value.
    pub fn cell(&self, truth: usize, predicted: usize) -> u64 {
        self.matrix[truth][predicted]
    }

    /// Documents of class `truth`.
    pub fn row_total(&self, truth: usize) -> u64 {
        self.matrix[truth].iter().sum()
    }

    /// Per-class accuracy (diagonal / row total); `None` if the class has no
    /// documents.
    pub fn class_accuracy(&self, truth: usize) -> Option<f64> {
        let total = self.row_total(truth);
        if total == 0 {
            None
        } else {
            Some(self.matrix[truth][truth] as f64 / total as f64)
        }
    }

    /// Overall accuracy (trace / total).
    pub fn accuracy(&self) -> f64 {
        let total: u64 = (0..self.labels.len()).map(|i| self.row_total(i)).sum();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.labels.len()).map(|i| self.matrix[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Unweighted mean of per-class accuracies — the paper's "average
    /// accuracy" over ten per-language document sets.
    pub fn average_class_accuracy(&self) -> f64 {
        let accs: Vec<f64> = (0..self.labels.len())
            .filter_map(|i| self.class_accuracy(i))
            .collect();
        if accs.is_empty() {
            0.0
        } else {
            accs.iter().sum::<f64>() / accs.len() as f64
        }
    }

    /// (min, max) per-class accuracy — the paper's "varies between 99.05%
    /// and 99.76%" range.
    pub fn class_accuracy_range(&self) -> Option<(f64, f64)> {
        let accs: Vec<f64> = (0..self.labels.len())
            .filter_map(|i| self.class_accuracy(i))
            .collect();
        let min = accs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = accs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if accs.is_empty() {
            None
        } else {
            Some((min, max))
        }
    }

    /// The most-confused off-diagonal pair `(truth, predicted, count)`, if
    /// any misclassification occurred — the paper's "consistently more
    /// Spanish documents were misclassified as Portuguese" observation.
    pub fn worst_confusion(&self) -> Option<(usize, usize, u64)> {
        let mut worst = None;
        for t in 0..self.labels.len() {
            for p in 0..self.labels.len() {
                if t != p && self.matrix[t][p] > 0 {
                    match worst {
                        None => worst = Some((t, p, self.matrix[t][p])),
                        Some((_, _, w)) if self.matrix[t][p] > w => {
                            worst = Some((t, p, self.matrix[t][p]))
                        }
                        _ => {}
                    }
                }
            }
        }
        worst
    }

    /// Render as an aligned text table (for experiment reports).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{:>12}", "truth\\pred"));
        for l in &self.labels {
            s.push_str(&format!("{l:>8}"));
        }
        s.push('\n');
        for (t, row) in self.matrix.iter().enumerate() {
            s.push_str(&format!("{:>12}", self.labels[t]));
            for &c in row {
                s.push_str(&format!("{c:>8}"));
            }
            s.push('\n');
        }
        s
    }
}

/// Summary of one evaluation run.
#[derive(Clone, Debug)]
pub struct EvalSummary {
    /// The confusion matrix.
    pub confusion: ConfusionMatrix,
    /// Mean top-2 margin over all documents (normalized match-count gap).
    pub mean_margin: f64,
    /// Total documents evaluated.
    pub documents: u64,
}

/// Evaluate a classifier over labelled documents, in parallel.
///
/// `classify` maps a document body to `(predicted_index, margin)`; `docs`
/// yields `(truth_index, body)`. The closure runs on the Rayon pool, so it
/// must be `Sync`.
pub fn evaluate<F>(labels: Vec<String>, docs: &[(usize, &[u8])], classify: F) -> EvalSummary
where
    F: Fn(&[u8]) -> (usize, f64) + Sync,
{
    let results: Vec<(usize, usize, f64)> = docs
        .par_iter()
        .map(|&(truth, body)| {
            let (pred, margin) = classify(body);
            (truth, pred, margin)
        })
        .collect();

    let mut confusion = ConfusionMatrix::new(labels);
    let mut margin_sum = 0.0;
    for &(truth, pred, margin) in &results {
        confusion.record(truth, pred);
        margin_sum += margin;
    }
    let documents = results.len() as u64;
    EvalSummary {
        confusion,
        mean_margin: if documents == 0 {
            0.0
        } else {
            margin_sum / documents as f64
        },
        documents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<String> {
        vec!["a".into(), "b".into(), "c".into()]
    }

    #[test]
    fn perfect_classifier_scores_one() {
        let mut m = ConfusionMatrix::new(labels());
        for t in 0..3 {
            for _ in 0..10 {
                m.record(t, t);
            }
        }
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.average_class_accuracy(), 1.0);
        assert_eq!(m.class_accuracy_range(), Some((1.0, 1.0)));
        assert_eq!(m.worst_confusion(), None);
    }

    #[test]
    fn accuracy_accounts_for_errors() {
        let mut m = ConfusionMatrix::new(labels());
        m.record(0, 0);
        m.record(0, 1); // one a->b error
        m.record(1, 1);
        m.record(2, 2);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(m.class_accuracy(0), Some(0.5));
        assert_eq!(m.worst_confusion(), Some((0, 1, 1)));
    }

    #[test]
    fn empty_class_excluded_from_average() {
        let mut m = ConfusionMatrix::new(labels());
        m.record(0, 0);
        m.record(1, 1);
        // class 2 has no documents
        assert_eq!(m.class_accuracy(2), None);
        assert_eq!(m.average_class_accuracy(), 1.0);
    }

    #[test]
    fn merge_adds_cellwise() {
        let mut a = ConfusionMatrix::new(labels());
        a.record(0, 0);
        let mut b = ConfusionMatrix::new(labels());
        b.record(0, 1);
        b.record(0, 0);
        a.merge(&b);
        assert_eq!(a.cell(0, 0), 2);
        assert_eq!(a.cell(0, 1), 1);
    }

    #[test]
    fn evaluate_parallel_is_deterministic() {
        let docs: Vec<(usize, &[u8])> = vec![
            (0, b"aaaa".as_slice()),
            (1, b"bbbb".as_slice()),
            (2, b"cccc".as_slice()),
            (0, b"aaab".as_slice()),
        ];
        let f = |body: &[u8]| -> (usize, f64) {
            // Classify by first byte.
            ((body[0] - b'a') as usize, 0.5)
        };
        let s1 = evaluate(labels(), &docs, f);
        let s2 = evaluate(labels(), &docs, f);
        assert_eq!(s1.confusion, s2.confusion);
        assert_eq!(s1.documents, 4);
        assert!((s1.mean_margin - 0.5).abs() < 1e-12);
        assert_eq!(s1.confusion.accuracy(), 1.0);
    }

    #[test]
    fn render_contains_labels() {
        let mut m = ConfusionMatrix::new(labels());
        m.record(1, 2);
        let r = m.render();
        assert!(r.contains('a') && r.contains('b') && r.contains('c'));
    }

    #[test]
    #[should_panic(expected = "label mismatch")]
    fn merge_requires_same_labels() {
        let mut a = ConfusionMatrix::new(labels());
        let b = ConfusionMatrix::new(vec!["x".into()]);
        a.merge(&b);
    }
}
