//! Classification results: per-language match counts and derived decisions.

/// The outcome of classifying one document: one match counter per language,
/// as read back from the hardware's Query Result command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassificationResult {
    counts: Vec<u64>,
    total_ngrams: u64,
}

impl ClassificationResult {
    /// Construct from raw counters.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty.
    pub fn new(counts: Vec<u64>, total_ngrams: u64) -> Self {
        assert!(!counts.is_empty(), "need at least one language counter");
        Self {
            counts,
            total_ngrams,
        }
    }

    /// Raw per-language match counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total n-grams tested for this document.
    pub fn total_ngrams(&self) -> u64 {
        self.total_ngrams
    }

    /// Index of the winning language (highest match count; ties broken by
    /// lowest index, matching a hardware priority encoder).
    pub fn best(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        best
    }

    /// Index of the runner-up language, or `None` for single-language banks.
    pub fn runner_up(&self) -> Option<usize> {
        if self.counts.len() < 2 {
            return None;
        }
        let best = self.best();
        let mut second: Option<usize> = None;
        for (i, &c) in self.counts.iter().enumerate() {
            if i == best {
                continue;
            }
            match second {
                None => second = Some(i),
                Some(s) if c > self.counts[s] => second = Some(i),
                _ => {}
            }
        }
        second
    }

    /// Margin between the top two counts, normalized by total n-grams —
    /// §5.1: "the difference in match counts between the two highest scoring
    /// languages is significantly larger than the false positive rate".
    /// Returns 1.0 for single-language banks and 0.0 for empty documents.
    pub fn margin(&self) -> f64 {
        let Some(second) = self.runner_up() else {
            return 1.0;
        };
        if self.total_ngrams == 0 {
            return 0.0;
        }
        let b = self.counts[self.best()];
        let s = self.counts[second];
        (b - s) as f64 / self.total_ngrams as f64
    }

    /// Match fraction for language `i` (count / total n-grams).
    pub fn match_fraction(&self, i: usize) -> f64 {
        if self.total_ngrams == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total_ngrams as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_is_argmax_with_low_index_tiebreak() {
        let r = ClassificationResult::new(vec![5, 9, 9, 3], 20);
        assert_eq!(r.best(), 1);
        assert_eq!(r.runner_up(), Some(2));
    }

    #[test]
    fn margin_normalized_by_total() {
        let r = ClassificationResult::new(vec![80, 30], 100);
        assert!((r.margin() - 0.5).abs() < 1e-12);
        assert!((r.match_fraction(0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn single_language_bank() {
        let r = ClassificationResult::new(vec![7], 10);
        assert_eq!(r.best(), 0);
        assert_eq!(r.runner_up(), None);
        assert_eq!(r.margin(), 1.0);
    }

    #[test]
    fn empty_document() {
        let r = ClassificationResult::new(vec![0, 0], 0);
        assert_eq!(r.best(), 0);
        assert_eq!(r.margin(), 0.0);
        assert_eq!(r.match_fraction(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one language")]
    fn empty_counts_rejected() {
        let _ = ClassificationResult::new(vec![], 0);
    }
}
