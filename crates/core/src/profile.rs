//! Language profiles and the classifier builder (the paper's preprocessing
//! step: "generating the n-gram profile for each language from a
//! representative sample of documents").

use lc_bloom::BloomParams;
use lc_ngram::{NGramProfile, NGramSpec};

use crate::classifier::{ExactClassifier, MultiLanguageClassifier};

/// The paper's profile size: top `t = 5000` n-grams per language (§4).
pub const PAPER_PROFILE_SIZE: usize = 5000;

/// A named language profile.
#[derive(Clone, Debug)]
pub struct LanguageProfile {
    /// Display name / code of the language.
    pub name: String,
    /// The top-t n-gram profile.
    pub profile: NGramProfile,
}

impl LanguageProfile {
    /// Train a profile from documents.
    pub fn train<'a, I: IntoIterator<Item = &'a [u8]>>(
        name: impl Into<String>,
        spec: NGramSpec,
        docs: I,
        t: usize,
    ) -> Self {
        Self {
            name: name.into(),
            profile: NGramProfile::build(spec, docs, t),
        }
    }
}

/// Builder for a multi-language classifier: collect per-language training
/// material, then construct Bloom-filter or exact classifiers from the same
/// profiles (so the two can be compared like the paper compares against
/// HAIL's direct-memory lookup).
#[derive(Clone, Debug)]
pub struct ClassifierBuilder {
    spec: NGramSpec,
    t: usize,
    profiles: Vec<LanguageProfile>,
}

impl ClassifierBuilder {
    /// Builder with the paper's configuration: 4-grams, `t = 5000`.
    pub fn paper() -> Self {
        Self::new(NGramSpec::PAPER, PAPER_PROFILE_SIZE)
    }

    /// Builder with a custom n-gram shape and profile size.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn new(spec: NGramSpec, t: usize) -> Self {
        assert!(t > 0, "profile size must be positive");
        Self {
            spec,
            t,
            profiles: Vec::new(),
        }
    }

    /// The n-gram shape.
    pub fn spec(&self) -> NGramSpec {
        self.spec
    }

    /// Profile size `t`.
    pub fn profile_size(&self) -> usize {
        self.t
    }

    /// Train and add one language from its training documents. Returns
    /// `&mut self` for chaining.
    pub fn add_language<'a, I: IntoIterator<Item = &'a [u8]>>(
        &mut self,
        name: impl Into<String>,
        docs: I,
    ) -> &mut Self {
        self.profiles
            .push(LanguageProfile::train(name, self.spec, docs, self.t));
        self
    }

    /// Add a pre-trained profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile's n-gram shape differs from the builder's.
    pub fn add_profile(&mut self, profile: LanguageProfile) -> &mut Self {
        assert_eq!(
            profile.profile.spec(),
            self.spec,
            "profile n-gram shape mismatch"
        );
        self.profiles.push(profile);
        self
    }

    /// Languages added so far.
    pub fn languages(&self) -> impl Iterator<Item = &str> {
        self.profiles.iter().map(|p| p.name.as_str())
    }

    /// Number of languages added so far.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no languages have been added.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The trained profiles.
    pub fn profiles(&self) -> &[LanguageProfile] {
        &self.profiles
    }

    /// Build the Bloom-filter classifier (the paper's design).
    ///
    /// # Panics
    ///
    /// Panics if no languages were added.
    pub fn build_bloom(&self, params: BloomParams, seed: u64) -> MultiLanguageClassifier {
        MultiLanguageClassifier::from_profiles(&self.profiles, self.spec, params, seed)
    }

    /// Build the exact (direct-lookup) classifier — the false-positive-free
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if no languages were added.
    pub fn build_exact(&self) -> ExactClassifier {
        ExactClassifier::from_profiles(&self.profiles, self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_trains_profiles_of_requested_size() {
        let mut b = ClassifierBuilder::new(NGramSpec::PAPER, 50);
        b.add_language(
            "en",
            [b"the quick brown fox jumps over the lazy dog".as_slice()],
        );
        assert_eq!(b.len(), 1);
        assert!(b.profiles()[0].profile.len() <= 50);
        assert!(!b.profiles()[0].profile.is_empty());
    }

    #[test]
    fn paper_builder_uses_4grams_and_5000() {
        let b = ClassifierBuilder::paper();
        assert_eq!(b.spec().n(), 4);
        assert_eq!(b.profile_size(), 5000);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mixed_spec_profiles_rejected() {
        let mut b = ClassifierBuilder::new(NGramSpec::new(4), 10);
        let p = LanguageProfile::train("x", NGramSpec::new(3), [b"abc def".as_slice()], 10);
        b.add_profile(p);
    }

    #[test]
    #[should_panic(expected = "profile size must be positive")]
    fn zero_t_rejected() {
        let _ = ClassifierBuilder::new(NGramSpec::PAPER, 0);
    }
}
