//! The parallel multi-language classifier (§3.3) and batch parallelism.
//!
//! Hardware shape: `c` copies of the multiple-language classifier, each with
//! dual-ported RAMs, test `2c` n-grams per clock (the paper's build: 4
//! copies → 8 n-grams/clock). An **adder tree** aggregates the per-copy
//! match counts after the final n-gram of a document. Because every copy
//! holds the *same* programmed bit-vectors, distributing the n-gram stream
//! across copies changes nothing about the total counts — a property this
//! module asserts in tests (and which the FPGA simulator relies on).

use lc_ngram::NGram;
use rayon::prelude::*;

use crate::classifier::MultiLanguageClassifier;
use crate::result::ClassificationResult;

/// The paper's lane configuration: 4 classifier copies × 2 RAM ports.
pub const PAPER_COPIES: usize = 4;

/// Hardware-shaped parallel classifier: `copies` replicas, each testing two
/// n-grams per clock through its dual ports.
#[derive(Clone, Debug)]
pub struct ParallelClassifier {
    /// One logical classifier; copies share programmed state, so a single
    /// instance stands in for all replicas functionally. Lane accounting is
    /// arithmetic over the stream, not duplicated memory.
    inner: MultiLanguageClassifier,
    copies: usize,
}

impl ParallelClassifier {
    /// Wrap a programmed classifier in the paper's 4-copy configuration.
    pub fn paper(inner: MultiLanguageClassifier) -> Self {
        Self::new(inner, PAPER_COPIES)
    }

    /// Wrap with a custom number of copies.
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0`.
    pub fn new(inner: MultiLanguageClassifier, copies: usize) -> Self {
        assert!(copies >= 1, "need at least one classifier copy");
        Self { inner, copies }
    }

    /// Number of classifier copies `c`.
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// N-grams accepted per clock (`2c`, dual-ported RAMs).
    pub fn ngrams_per_clock(&self) -> usize {
        2 * self.copies
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &MultiLanguageClassifier {
        &self.inner
    }

    /// Classify a document the way the datapath does: n-grams are dealt
    /// round-robin to `2c` lanes, each lane keeps its own per-language
    /// counters, and the adder tree merges them at end-of-document.
    /// The result is count-identical to sequential classification —
    /// including under sub-sampling: extraction uses the wrapped
    /// classifier's full config, not a hardcoded subsample-1 extractor.
    pub fn classify(&self, text: &[u8]) -> ClassificationResult {
        let mut grams = Vec::new();
        self.inner.extractor().extract_into(text, &mut grams);
        self.classify_ngrams(&grams)
    }

    /// Per-lane match counters for a pre-extracted stream: `lane_counts[l][p]`
    /// is the count lane `l` accumulated for language `p`. This is the state
    /// the hardware's physical counters hold before the adder tree fires at
    /// end-of-document; the FPGA model uses it to apply counter-width
    /// saturation per lane.
    ///
    /// Round-robin dealing means lane `l` sees grams `l, l+2c, l+4c, …`; each
    /// lane accumulates its strided sub-stream through the classifier's
    /// bit-sliced bank in one pass (the old shape re-ran the full classifier
    /// for every single gram, allocating a result per gram per lane).
    pub fn lane_counts(&self, grams: &[NGram]) -> Vec<Vec<u64>> {
        let lanes = self.ngrams_per_clock();
        let p = self.inner.num_languages();
        let mut lane_counts = vec![vec![0u64; p]; lanes];
        let bank = self.inner.bank();
        for (lane, counts) in lane_counts.iter_mut().enumerate() {
            bank.accumulate_keys(
                grams.iter().skip(lane).step_by(lanes).map(|g| g.value()),
                counts,
            );
        }
        lane_counts
    }

    /// Adder tree over per-lane counters: pairwise reduction, exactly
    /// associative for u64 adds.
    pub fn adder_tree(mut level: Vec<Vec<u64>>, p: usize) -> Vec<u64> {
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut it = level.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        next.push(a.iter().zip(&b).map(|(x, y)| x + y).collect());
                    }
                    None => next.push(a),
                }
            }
            level = next;
        }
        level.pop().unwrap_or_else(|| vec![0u64; p])
    }

    /// Lane-split classification of a pre-extracted stream.
    pub fn classify_ngrams(&self, grams: &[NGram]) -> ClassificationResult {
        let p = self.inner.num_languages();
        let lane_counts = self.lane_counts(grams);
        ClassificationResult::new(Self::adder_tree(lane_counts, p), grams.len() as u64)
    }

    /// Clock cycles the datapath needs for a `len`-byte document (one byte
    /// is one n-gram once the window is warm): `ceil(ngrams / 2c)`.
    pub fn cycles_for_len(&self, len: usize) -> u64 {
        let n = self.inner.spec().n();
        let ngrams = len.saturating_sub(n - 1);
        (ngrams as u64).div_ceil(self.ngrams_per_clock() as u64)
    }
}

/// Classify a batch of documents in parallel over the Rayon pool (the
/// paper's outermost level of parallelism: "parallel document processing").
/// Results are index-aligned with the input order regardless of scheduling.
pub fn classify_batch(
    classifier: &MultiLanguageClassifier,
    docs: &[&[u8]],
) -> Vec<ClassificationResult> {
    docs.par_iter().map(|d| classifier.classify(d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ClassifierBuilder;
    use lc_bloom::BloomParams;
    use lc_corpus::{Corpus, CorpusConfig};
    use lc_ngram::NGramSpec;

    fn classifier() -> MultiLanguageClassifier {
        let corpus = Corpus::generate(CorpusConfig::test_scale());
        let split = corpus.split();
        let mut b = ClassifierBuilder::new(NGramSpec::PAPER, 1000);
        for &l in corpus.languages() {
            let docs: Vec<&[u8]> = split.train(l).map(|d| d.text.as_slice()).collect();
            b.add_language(l.code(), docs);
        }
        b.build_bloom(BloomParams::PAPER_CONSERVATIVE, 11)
    }

    #[test]
    fn lane_split_is_count_exact() {
        let c = classifier();
        let corpus = Corpus::generate(CorpusConfig::test_scale());
        let par = ParallelClassifier::paper(c.clone());
        for d in corpus.split().test_all().take(10) {
            let seq = c.classify(&d.text);
            let lanes = par.classify(&d.text);
            assert_eq!(seq, lanes, "lane-split result must equal sequential");
        }
    }

    #[test]
    fn any_copy_count_is_equivalent() {
        let c = classifier();
        let text = b"some text to classify across differing lane counts for equivalence";
        let reference = c.classify(text);
        for copies in [1usize, 2, 3, 4, 8] {
            let par = ParallelClassifier::new(c.clone(), copies);
            assert_eq!(par.classify(text), reference, "copies={copies}");
        }
    }

    #[test]
    fn lane_counts_sum_to_sequential_counts() {
        let c = classifier();
        let par = ParallelClassifier::paper(c.clone());
        let text = b"the adder tree must preserve every single match count exactly";
        let mut grams = Vec::new();
        lc_ngram::NGramExtractor::new(c.spec()).extract_into(text, &mut grams);
        let lanes = par.lane_counts(&grams);
        assert_eq!(lanes.len(), 8);
        let summed = ParallelClassifier::adder_tree(lanes, c.num_languages());
        assert_eq!(summed, c.classify(text).counts().to_vec());
    }

    #[test]
    fn adder_tree_handles_odd_lane_counts_and_empty() {
        let merged = ParallelClassifier::adder_tree(vec![vec![1, 2], vec![3, 4], vec![5, 6]], 2);
        assert_eq!(merged, vec![9, 12]);
        assert_eq!(ParallelClassifier::adder_tree(vec![], 3), vec![0, 0, 0]);
    }

    #[test]
    fn cycle_accounting() {
        let c = classifier();
        let par = ParallelClassifier::paper(c);
        assert_eq!(par.ngrams_per_clock(), 8);
        // 8003-byte doc -> 8000 n-grams -> 1000 cycles.
        assert_eq!(par.cycles_for_len(8003), 1000);
        // Short docs round up to one cycle once any n-gram exists.
        assert_eq!(par.cycles_for_len(4), 1);
        assert_eq!(par.cycles_for_len(3), 0);
        assert_eq!(par.cycles_for_len(0), 0);
    }

    #[test]
    fn batch_matches_sequential_order() {
        let c = classifier();
        let corpus = Corpus::generate(CorpusConfig::test_scale());
        let docs: Vec<&[u8]> = corpus
            .split()
            .test_all()
            .take(24)
            .map(|d| d.text.as_slice())
            .collect();
        let batch = classify_batch(&c, &docs);
        assert_eq!(batch.len(), docs.len());
        for (d, r) in docs.iter().zip(&batch) {
            assert_eq!(&c.classify(d), r);
        }
    }

    #[test]
    #[should_panic(expected = "at least one classifier copy")]
    fn zero_copies_rejected() {
        let _ = ParallelClassifier::new(classifier(), 0);
    }
}
