//! The multiple-language classifier (§3.2).
//!
//! One Parallel Bloom Filter per language, all sharing the same H3 hash
//! family (the hash circuits are fed by one n-gram register; their outputs
//! fan out to every language's bit-vectors). Document n-grams are tested
//! against every filter "in parallel" and per-language match counters are
//! incremented; at end-of-document the counters are read and the highest
//! count wins.
//!
//! The per-language filters are the canonical representation (the FPGA
//! fabric model places their bit-vectors onto RAM blocks); the classify hot
//! path runs on a bit-sliced [`FilterBank`] transposed from them, so each
//! n-gram costs `k` loads + one AND for **all** languages instead of `p·k`
//! scattered bit-reads — the software image of the hardware's fan-out.

use lc_bloom::{BloomParams, FilterBank, ParallelBloomFilter, SimdLevel};
use lc_ngram::{NGram, NGramExtractor, NGramSpec, StreamingExtractor};
use std::collections::HashSet;

use crate::profile::LanguageProfile;
use crate::result::ClassificationResult;
use crate::streaming::FusedChunk;

/// Bloom-filter-based multi-language classifier — the paper's design.
#[derive(Clone, Debug)]
pub struct MultiLanguageClassifier {
    names: Vec<String>,
    filters: Vec<ParallelBloomFilter>,
    bank: FilterBank,
    spec: NGramSpec,
    extractor: NGramExtractor,
    params: BloomParams,
    seed: u64,
}

impl MultiLanguageClassifier {
    /// Program one filter per profile. All filters share the hash family
    /// derived from `seed` (their bit-vectors are independent).
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or a profile's n-gram shape differs
    /// from `spec`.
    pub fn from_profiles(
        profiles: &[LanguageProfile],
        spec: NGramSpec,
        params: BloomParams,
        seed: u64,
    ) -> Self {
        assert!(!profiles.is_empty(), "need at least one language profile");
        let mut names = Vec::with_capacity(profiles.len());
        let mut filters = Vec::with_capacity(profiles.len());
        for p in profiles {
            assert_eq!(p.profile.spec(), spec, "profile n-gram shape mismatch");
            let mut f = ParallelBloomFilter::new(params, spec.bits(), seed);
            f.program_all(p.profile.ngrams().map(|g| g.value()));
            names.push(p.name.clone());
            filters.push(f);
        }
        let bank = FilterBank::from_filters(&filters);
        Self {
            names,
            filters,
            bank,
            spec,
            extractor: NGramExtractor::new(spec),
            params,
            seed,
        }
    }

    /// Language names, index-aligned with result counters.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of languages `p`.
    pub fn num_languages(&self) -> usize {
        self.filters.len()
    }

    /// The Bloom parameters in use.
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// The n-gram shape in use.
    pub fn spec(&self) -> NGramSpec {
        self.spec
    }

    /// The hash-family seed (needed to build hardware replicas that must
    /// agree bit-for-bit).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Use sub-sampled extraction (test every `s`-th n-gram), the HAIL-style
    /// bandwidth fallback of §3.3/§5.2. Propagates to every consumer built
    /// from this classifier afterwards — whole-buffer `classify`, streaming
    /// sessions, and the network service all extract with the same factor.
    pub fn set_subsampling(&mut self, s: usize) {
        self.extractor = NGramExtractor::with_subsampling(self.spec, s);
    }

    /// The sub-sampling factor in use (1 = every n-gram, the default).
    pub fn subsample(&self) -> usize {
        self.extractor.subsample()
    }

    /// The configured whole-buffer extractor (shape **and** sub-sampling).
    pub fn extractor(&self) -> NGramExtractor {
        self.extractor
    }

    /// A streaming extractor carrying this classifier's full extraction
    /// config — what every streaming consumer must use so chunked
    /// classification is bit-identical to [`Self::classify`].
    pub fn streaming_extractor(&self) -> StreamingExtractor {
        self.extractor.streaming()
    }

    /// Borrow the per-language filters (the FPGA fabric model maps their
    /// bit-vectors onto embedded RAM blocks).
    pub fn filters(&self) -> &[ParallelBloomFilter] {
        &self.filters
    }

    /// Borrow the bit-sliced query engine the hot path runs on.
    pub fn bank(&self) -> &FilterBank {
        &self.bank
    }

    /// Pin the probe path to the scalar loops (`true`), or restore the
    /// process-wide runtime dispatch (`false`). The live A/B knob behind
    /// `--force-scalar`: dispatch is per-classifier and decided here, not
    /// per call, so benchmarks can hold a scalar clone and an auto clone of
    /// the same classifier side by side.
    pub fn set_force_scalar(&mut self, force: bool) {
        self.bank.set_simd_level(if force {
            SimdLevel::Scalar
        } else {
            SimdLevel::detect()
        });
    }

    /// The probe path the hot loop actually runs (`avx2` only when the
    /// vector engine is live). Surfaces in bench output and the service
    /// stats plane.
    pub fn simd_level(&self) -> SimdLevel {
        self.bank.simd_level()
    }

    /// Classify a document given as raw ISO-8859-1 bytes.
    ///
    /// Runs the **fused** path: one loop folds each byte, advances the
    /// shift register, applies the sub-sampling phase, and AND-probes the
    /// bit-sliced bank — no intermediate n-gram buffer. This is the same
    /// engine streaming sessions run, so whole-buffer and chunked
    /// classification share exactly one hot loop.
    pub fn classify(&self, text: &[u8]) -> ClassificationResult {
        let mut counts = vec![0u64; self.filters.len()];
        let mut ex = self.extractor.streaming();
        self.bank.accumulate_source(
            FusedChunk {
                extractor: &mut ex,
                chunk: text,
            },
            &mut counts,
        );
        ClassificationResult::new(counts, ex.grams_emitted() as u64)
    }

    /// Classify a pre-extracted n-gram stream on the bit-sliced bank: the
    /// `k` hash addresses are computed once per n-gram and one AND-reduce
    /// tests all languages simultaneously, exactly as the shared n-gram
    /// register feeds every classifier in hardware.
    pub fn classify_ngrams(&self, grams: &[NGram]) -> ClassificationResult {
        let mut counts = vec![0u64; self.filters.len()];
        self.accumulate_ngrams(grams, &mut counts);
        ClassificationResult::new(counts, grams.len() as u64)
    }

    /// Add each n-gram's language matches into `counts` (one counter per
    /// language) without building a result. The pre-extracted probe loop
    /// of [`Self::classify_ngrams`] and the datapath lane model; paths that
    /// see raw bytes (whole-buffer `classify`, streaming sessions) fuse
    /// extraction into the same bank probe instead.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != self.num_languages()`.
    #[inline]
    pub fn accumulate_ngrams(&self, grams: &[NGram], counts: &mut [u64]) {
        self.bank
            .accumulate_keys(grams.iter().map(|g| g.value()), counts);
    }

    /// Reference implementation of [`Self::classify_ngrams`] over the
    /// per-language filters (`p × k` scattered bit-reads per n-gram). Kept
    /// for equivalence property tests and as the benchmark baseline; the
    /// banked path must produce identical results for any input.
    pub fn classify_ngrams_naive(&self, grams: &[NGram]) -> ClassificationResult {
        let mut counts = vec![0u64; self.filters.len()];
        let mut addrs = vec![0u32; self.params.k];
        for g in grams {
            self.filters[0].addresses_into(g.value(), &mut addrs);
            for (c, f) in counts.iter_mut().zip(&self.filters) {
                if f.test_with_addresses(&addrs) {
                    *c += 1;
                }
            }
        }
        ClassificationResult::new(counts, grams.len() as u64)
    }

    /// Name of the winning language for a document.
    pub fn identify(&self, text: &[u8]) -> &str {
        &self.names[self.classify(text).best()]
    }
}

/// Exact-membership classifier: direct lookup tables instead of Bloom
/// filters (no false positives). This is the reference against which the
/// Bloom classifier's accuracy loss is measured, and algorithmically what
/// HAIL's off-chip SRAM tables compute.
#[derive(Clone, Debug)]
pub struct ExactClassifier {
    names: Vec<String>,
    sets: Vec<HashSet<u64>>,
    spec: NGramSpec,
    extractor: NGramExtractor,
}

impl ExactClassifier {
    /// Build from trained profiles.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or shapes mismatch.
    pub fn from_profiles(profiles: &[LanguageProfile], spec: NGramSpec) -> Self {
        assert!(!profiles.is_empty(), "need at least one language profile");
        let mut names = Vec::with_capacity(profiles.len());
        let mut sets = Vec::with_capacity(profiles.len());
        for p in profiles {
            assert_eq!(p.profile.spec(), spec, "profile n-gram shape mismatch");
            names.push(p.name.clone());
            sets.push(p.profile.ngrams().map(|g| g.value()).collect());
        }
        Self {
            names,
            sets,
            spec,
            extractor: NGramExtractor::new(spec),
        }
    }

    /// Language names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of languages.
    pub fn num_languages(&self) -> usize {
        self.sets.len()
    }

    /// The n-gram shape in use.
    pub fn spec(&self) -> NGramSpec {
        self.spec
    }

    /// Classify a document.
    pub fn classify(&self, text: &[u8]) -> ClassificationResult {
        let mut grams = Vec::new();
        self.extractor.extract_into(text, &mut grams);
        self.classify_ngrams(&grams)
    }

    /// Classify a pre-extracted n-gram stream.
    pub fn classify_ngrams(&self, grams: &[NGram]) -> ClassificationResult {
        let mut counts = vec![0u64; self.sets.len()];
        for g in grams {
            for (c, s) in counts.iter_mut().zip(&self.sets) {
                if s.contains(&g.value()) {
                    *c += 1;
                }
            }
        }
        ClassificationResult::new(counts, grams.len() as u64)
    }

    /// Name of the winning language.
    pub fn identify(&self, text: &[u8]) -> &str {
        &self.names[self.classify(text).best()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ClassifierBuilder;
    use lc_corpus::{Corpus, CorpusConfig};

    fn tiny_builder() -> ClassifierBuilder {
        let mut b = ClassifierBuilder::new(NGramSpec::PAPER, 200);
        b.add_language(
            "en",
            [b"the quick brown fox jumps over the lazy dog and the cat sat on the mat with the hat".as_slice()],
        );
        b.add_language(
            "fr",
            [b"le renard brun rapide saute par dessus le chien paresseux et le chat dort sur le tapis".as_slice()],
        );
        b
    }

    #[test]
    fn bloom_classifier_identifies_training_like_text() {
        let b = tiny_builder();
        let c = b.build_bloom(BloomParams::PAPER_CONSERVATIVE, 1);
        assert_eq!(c.identify(b"the fox and the dog sat with the cat"), "en");
        assert_eq!(c.identify(b"le chien et le chat par dessus le tapis"), "fr");
    }

    #[test]
    fn exact_classifier_agrees_with_bloom_at_low_fp() {
        // With 16 Kbit vectors and only ~80 programmed n-grams the FP rate
        // is astronomically small: Bloom and exact counts must be equal.
        let b = tiny_builder();
        let bloom = b.build_bloom(BloomParams::PAPER_CONSERVATIVE, 2);
        let exact = b.build_exact();
        for text in [
            b"the fox jumps over the dog".as_slice(),
            b"le chat et le chien".as_slice(),
            b"completely unrelated zzzz qqqq".as_slice(),
        ] {
            assert_eq!(bloom.classify(text), exact.classify(text));
        }
    }

    #[test]
    fn bloom_counts_never_below_exact_counts() {
        // Bloom filters only add false positives, never remove matches.
        let mut b = ClassifierBuilder::new(NGramSpec::PAPER, 5000);
        let corpus = Corpus::generate(CorpusConfig::test_scale());
        let split = corpus.split();
        for &l in corpus.languages() {
            let docs: Vec<&[u8]> = split.train(l).map(|d| d.text.as_slice()).collect();
            b.add_language(l.code(), docs);
        }
        // Small, FP-prone configuration to make the property interesting.
        let bloom = b.build_bloom(BloomParams::from_kbits(4, 2), 3);
        let exact = b.build_exact();
        for d in split.test_all().take(20) {
            let rb = bloom.classify(&d.text);
            let re = exact.classify(&d.text);
            for (cb, ce) in rb.counts().iter().zip(re.counts()) {
                assert!(cb >= ce, "bloom count {cb} below exact count {ce}");
            }
        }
    }

    #[test]
    fn classifier_reports_shape() {
        let c = tiny_builder().build_bloom(BloomParams::PAPER_COMPACT, 7);
        assert_eq!(c.num_languages(), 2);
        assert_eq!(c.names(), &["en".to_string(), "fr".to_string()]);
        assert_eq!(c.params(), BloomParams::PAPER_COMPACT);
        assert_eq!(c.spec().n(), 4);
    }

    #[test]
    fn subsampling_reduces_tested_ngrams() {
        let b = tiny_builder();
        let mut c = b.build_bloom(BloomParams::PAPER_CONSERVATIVE, 1);
        let full = c.classify(b"the quick brown fox jumps over the lazy dog");
        c.set_subsampling(2);
        let half = c.classify(b"the quick brown fox jumps over the lazy dog");
        assert!(half.total_ngrams() <= full.total_ngrams() / 2 + 1);
        // Decision should be stable for clear-cut text.
        assert_eq!(full.best(), half.best());
    }

    #[test]
    fn empty_document_yields_zero_counts() {
        let c = tiny_builder().build_bloom(BloomParams::PAPER_CONSERVATIVE, 1);
        let r = c.classify(b"");
        assert_eq!(r.total_ngrams(), 0);
        assert!(r.counts().iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "at least one language")]
    fn empty_profile_list_rejected() {
        let _ = MultiLanguageClassifier::from_profiles(
            &[],
            NGramSpec::PAPER,
            BloomParams::PAPER_CONSERVATIVE,
            1,
        );
    }
}
