//! # lc-core — the paper's contribution as a library
//!
//! End-to-end n-gram language classification over Parallel Bloom Filters:
//!
//! 1. **Training** ([`profile`]): build a top-`t` 4-gram profile per language
//!    from training documents (paper: `t = 5000`, >99% accuracy).
//! 2. **Classification** ([`classifier`]): test each document n-gram for
//!    membership in every language's Bloom filter simultaneously, increment
//!    per-language match counters, and pick the language with the highest
//!    count (the HAIL scoring rule the paper adopts). An exact
//!    (direct-lookup) classifier is included as the false-positive-free
//!    reference, mirroring HAIL's direct memory tables.
//! 3. **Hardware-shaped parallelism** ([`parallel`]): the paper's *parallel
//!    multi-language classifier* replicates the classifier `c` times and uses
//!    dual-ported RAMs to test `2c` n-grams per clock (their build: `c = 4`,
//!    8 n-grams/clock), merging counts through an adder tree at
//!    end-of-document. [`parallel::ParallelClassifier`] reproduces that
//!    datapath shape (and its count-exactness), and [`parallel::classify_batch`]
//!    provides document-level parallelism over a Rayon pool — the software
//!    analogue of "parallel document processing".
//! 4. **Evaluation** ([`eval`]): confusion matrices, per-language and average
//!    accuracy, and top-2 margin statistics (§5.1 notes the margin between
//!    the two highest-scoring languages dwarfs the false-positive rate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod eval;
pub mod parallel;
pub mod profile;
pub mod result;
pub mod streaming;
pub mod unicode;

pub use classifier::{ExactClassifier, MultiLanguageClassifier};
pub use eval::{ConfusionMatrix, EvalSummary};
pub use lc_bloom::SimdLevel;
pub use parallel::{classify_batch, ParallelClassifier};
pub use profile::{ClassifierBuilder, LanguageProfile, PAPER_PROFILE_SIZE};
pub use result::ClassificationResult;
pub use streaming::{StreamingClassifier, StreamingSession};
pub use unicode::{build_wide_profile, WideClassifier};
