//! Incremental (streaming) classification.
//!
//! The hardware never sees a whole document at once: DMA delivers 64-bit
//! words and the match counters accumulate as n-grams emerge from the shift
//! register, until End-of-Document latches the result. This module gives the
//! software library the same shape: feed chunks of any size, read partial
//! standings at any point, and `finish` for the final result. Output is
//! bit-identical to whole-buffer classification for any chunking (property
//! tested).

use lc_ngram::{NGram, StreamingExtractor};

use crate::classifier::MultiLanguageClassifier;
use crate::result::ClassificationResult;

/// The per-document state of a streaming session, held separately from the
/// classifier reference so long-lived owners (a server worker holding an
/// `Arc<MultiLanguageClassifier>`, one session per connection) need no
/// self-referential borrow. Every call takes the classifier explicitly;
/// [`StreamingClassifier`] wraps the pair back up for the common
/// borrow-based use.
#[derive(Clone, Debug)]
pub struct StreamingSession {
    extractor: StreamingExtractor,
    counts: Vec<u64>,
    total_ngrams: u64,
    /// Workhorse buffer reused across feeds.
    grams: Vec<NGram>,
}

impl StreamingSession {
    /// Start a session shaped for `classifier` (its n-gram spec and
    /// language count).
    pub fn new(classifier: &MultiLanguageClassifier) -> Self {
        Self {
            extractor: StreamingExtractor::new(classifier.spec()),
            counts: vec![0u64; classifier.num_languages()],
            total_ngrams: 0,
            grams: Vec::new(),
        }
    }

    /// Feed the next chunk of the document (any size, including empty).
    /// Matches accumulate through the classifier's bit-sliced bank, exactly
    /// as whole-buffer classification does. `classifier` must be the one
    /// the session was created for (checked in debug builds).
    pub fn feed(&mut self, classifier: &MultiLanguageClassifier, chunk: &[u8]) {
        debug_assert_eq!(self.counts.len(), classifier.num_languages());
        debug_assert_eq!(
            self.extractor.spec(),
            classifier.spec(),
            "session fed with a different classifier than it was created for"
        );
        self.grams.clear();
        self.extractor.feed(chunk, &mut self.grams);
        classifier.accumulate_ngrams(&self.grams, &mut self.counts);
        self.total_ngrams += self.grams.len() as u64;
    }

    /// Current standings (partial counts) without ending the document —
    /// what a host would see reading the counters mid-stream.
    pub fn standings(&self) -> ClassificationResult {
        ClassificationResult::new(self.counts.clone(), self.total_ngrams)
    }

    /// Bytes consumed so far in this document.
    pub fn bytes_seen(&self) -> usize {
        self.extractor.chars_seen()
    }

    /// End the document and return the final result (the End-of-Document
    /// latch). The session resets and can be reused for the next document.
    pub fn finish(&mut self) -> ClassificationResult {
        let fresh = vec![0u64; self.counts.len()];
        let result = ClassificationResult::new(
            std::mem::replace(&mut self.counts, fresh),
            self.total_ngrams,
        );
        self.total_ngrams = 0;
        self.extractor.reset();
        result
    }
}

/// A streaming classification session over one document, borrowing the
/// classifier for its lifetime. Thin wrapper over [`StreamingSession`].
#[derive(Clone, Debug)]
pub struct StreamingClassifier<'c> {
    classifier: &'c MultiLanguageClassifier,
    session: StreamingSession,
}

impl<'c> StreamingClassifier<'c> {
    /// Start a session against a programmed classifier.
    pub fn new(classifier: &'c MultiLanguageClassifier) -> Self {
        Self {
            classifier,
            session: StreamingSession::new(classifier),
        }
    }

    /// Feed the next chunk of the document (any size, including empty).
    pub fn feed(&mut self, chunk: &[u8]) {
        self.session.feed(self.classifier, chunk);
    }

    /// Current standings (partial counts) without ending the document.
    pub fn standings(&self) -> ClassificationResult {
        self.session.standings()
    }

    /// Bytes consumed so far in this document.
    pub fn bytes_seen(&self) -> usize {
        self.session.bytes_seen()
    }

    /// End the document and return the final result (the End-of-Document
    /// latch). The session resets and can be reused for the next document.
    pub fn finish(&mut self) -> ClassificationResult {
        self.session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ClassifierBuilder;
    use lc_bloom::BloomParams;
    use lc_corpus::{Corpus, CorpusConfig};
    use lc_ngram::NGramSpec;
    use proptest::prelude::*;

    fn classifier() -> &'static MultiLanguageClassifier {
        static CLASSIFIER: std::sync::OnceLock<MultiLanguageClassifier> =
            std::sync::OnceLock::new();
        CLASSIFIER.get_or_init(build_classifier)
    }

    fn build_classifier() -> MultiLanguageClassifier {
        let corpus = Corpus::generate(CorpusConfig::test_scale());
        let split = corpus.split();
        let mut b = ClassifierBuilder::new(NGramSpec::PAPER, 800);
        for &l in corpus.languages() {
            let docs: Vec<&[u8]> = split.train(l).map(|d| d.text.as_slice()).collect();
            b.add_language(l.code(), docs);
        }
        b.build_bloom(BloomParams::PAPER_CONSERVATIVE, 3)
    }

    #[test]
    fn chunked_equals_whole_buffer() {
        let c = classifier();
        let corpus = Corpus::generate(CorpusConfig::test_scale());
        let mut s = StreamingClassifier::new(c);
        for d in corpus.split().test_all().take(8) {
            for chunk in d.text.chunks(8) {
                s.feed(chunk);
            }
            assert_eq!(s.finish(), c.classify(&d.text));
        }
    }

    #[test]
    fn standings_are_monotone_and_final() {
        let c = classifier();
        let mut s = StreamingClassifier::new(c);
        let doc =
            b"the committee shall deliver its opinion on the draft measures within a time limit";
        let mut prev_total = 0u64;
        for chunk in doc.chunks(10) {
            s.feed(chunk);
            let st = s.standings();
            assert!(st.total_ngrams() >= prev_total);
            prev_total = st.total_ngrams();
        }
        let final_result = s.finish();
        assert_eq!(final_result, c.classify(doc));
    }

    #[test]
    fn session_reuse_is_clean() {
        let c = classifier();
        let mut s = StreamingClassifier::new(c);
        s.feed(b"le premier document francais avec quelques mots");
        let first = s.finish();
        s.feed(b"the second document in english with other words");
        let second = s.finish();
        assert_eq!(
            first,
            c.classify(b"le premier document francais avec quelques mots")
        );
        assert_eq!(
            second,
            c.classify(b"the second document in english with other words")
        );
    }

    #[test]
    fn empty_feeds_are_harmless() {
        let c = classifier();
        let mut s = StreamingClassifier::new(c);
        s.feed(b"");
        s.feed(b"abcdef");
        s.feed(b"");
        assert_eq!(s.finish(), c.classify(b"abcdef"));
    }

    proptest! {
        #[test]
        fn any_chunking_is_equivalent(
            doc in proptest::collection::vec(any::<u8>(), 0..400),
            cuts in proptest::collection::vec(0usize..400, 0..6),
        ) {
            let c = classifier();
            let mut cut_points: Vec<usize> =
                cuts.into_iter().map(|x| x % (doc.len() + 1)).collect();
            cut_points.push(0);
            cut_points.push(doc.len());
            cut_points.sort_unstable();
            cut_points.dedup();

            let mut s = StreamingClassifier::new(c);
            for w in cut_points.windows(2) {
                s.feed(&doc[w[0]..w[1]]);
            }
            prop_assert_eq!(s.finish(), c.classify(&doc));
        }
    }
}
