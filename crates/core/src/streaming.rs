//! Incremental (streaming) classification.
//!
//! The hardware never sees a whole document at once: DMA delivers 64-bit
//! words and the match counters accumulate as n-grams emerge from the shift
//! register, until End-of-Document latches the result. This module gives the
//! software library the same shape: feed chunks of any size, read partial
//! standings at any point, and `finish` for the final result. Output is
//! bit-identical to whole-buffer classification for any chunking (property
//! tested).

use lc_bloom::{KeyBlockSink, KeySource};
use lc_ngram::{GramBlockSink, NGram, StreamingExtractor};

use crate::classifier::MultiLanguageClassifier;
use crate::result::ClassificationResult;

/// [`KeySource`] adapter fusing one chunk's n-gram extraction into the
/// bank probe: `for_each_key` runs [`StreamingExtractor::feed_with`], so
/// the byte-fold/shift/phase state machine inlines into the bank's
/// monomorphized probe loop — extraction and classification in one pass,
/// no `NGram` buffer in between. Shared by whole-buffer
/// [`MultiLanguageClassifier::classify`] (one chunk = the document) and
/// [`StreamingSession::feed`].
pub(crate) struct FusedChunk<'a> {
    pub extractor: &'a mut StreamingExtractor,
    pub chunk: &'a [u8],
}

// The extractor's block width and the bank's SIMD block width were chosen
// to match (8 × 32-bit lanes in one AVX2 register); the zero-repacking
// override below relies on it.
const _: () = assert!(lc_ngram::BLOCK_LANES == lc_bloom::KEY_BLOCK_LANES);

impl KeySource for FusedChunk<'_> {
    #[inline]
    fn for_each_key(self, mut sink: impl FnMut(u64)) {
        self.extractor.feed_with(self.chunk, |g| sink(g.value()));
    }

    /// Block-native override: the blocked extractor already produces packed
    /// 8-lane gram blocks, so they flow to the bank's vector probe without
    /// any repacking; warm-up bytes and tails shorter than a block arrive
    /// on the scalar `key` path. Packed grams are at most `spec.bits()`
    /// wide and the classifier builds its hash family at exactly that input
    /// width, so block lanes never exceed `key_mask`.
    #[inline]
    fn for_each_key_block(self, key_mask: u64, sink: &mut impl KeyBlockSink) {
        struct Adapter<'s, S: KeyBlockSink> {
            sink: &'s mut S,
            key_mask: u64,
        }
        impl<S: KeyBlockSink> GramBlockSink for Adapter<'_, S> {
            #[inline]
            fn block(&mut self, grams: &[u32; lc_ngram::BLOCK_LANES]) {
                self.sink.block(grams);
            }
            #[inline]
            fn gram(&mut self, gram: NGram) {
                self.sink.key(gram.value() & self.key_mask);
            }
        }
        self.extractor
            .feed_blocks(self.chunk, &mut Adapter { sink, key_mask });
    }
}

/// The per-document state of a streaming session, held separately from the
/// classifier reference so long-lived owners (a server worker holding an
/// `Arc<MultiLanguageClassifier>`, one session per connection) need no
/// self-referential borrow. Every call takes the classifier explicitly;
/// [`StreamingClassifier`] wraps the pair back up for the common
/// borrow-based use.
#[derive(Clone, Debug)]
pub struct StreamingSession {
    extractor: StreamingExtractor,
    counts: Vec<u64>,
    /// Scratch for [`Self::feed_two_phase`] only; stays empty (and
    /// unallocated) on the fused path.
    two_phase_scratch: Vec<lc_ngram::NGram>,
}

impl StreamingSession {
    /// Start a session shaped for `classifier`: its n-gram spec, language
    /// count, **and** sub-sampling factor. Inheriting the full extraction
    /// config here is what keeps chunked classification bit-identical to
    /// whole-buffer `classify` on a sub-sampled classifier — the session
    /// cannot silently run at a different factor than its classifier.
    pub fn new(classifier: &MultiLanguageClassifier) -> Self {
        Self {
            extractor: classifier.streaming_extractor(),
            counts: vec![0u64; classifier.num_languages()],
            two_phase_scratch: Vec::new(),
        }
    }

    /// Feed the next chunk of the document (any size, including empty).
    /// Matches accumulate through the classifier's bit-sliced bank on the
    /// fused path — each byte is folded, shifted, sub-sampled, hashed, and
    /// AND-probed in one loop, exactly as whole-buffer classification
    /// does. `classifier` must be the one the session was created for
    /// (checked in debug builds).
    pub fn feed(&mut self, classifier: &MultiLanguageClassifier, chunk: &[u8]) {
        debug_assert_eq!(self.counts.len(), classifier.num_languages());
        debug_assert_eq!(
            self.extractor.spec(),
            classifier.spec(),
            "session fed with a different classifier than it was created for"
        );
        debug_assert_eq!(
            self.extractor.subsample(),
            classifier.subsample(),
            "session fed with a classifier whose sub-sampling changed"
        );
        classifier.bank().accumulate_source(
            FusedChunk {
                extractor: &mut self.extractor,
                chunk,
            },
            &mut self.counts,
        );
    }

    /// The pre-fusion reference feed: extract the chunk into `scratch`,
    /// then probe the pre-extracted stream — the two loops the fused
    /// [`Self::feed`] replaced. Bit-identical results (property-tested);
    /// kept so benchmarks and the service's `two_phase_reference` mode can
    /// A/B the fusion on live traffic, and as the readable spelling of
    /// what the fused loop computes.
    pub fn feed_two_phase(&mut self, classifier: &MultiLanguageClassifier, chunk: &[u8]) {
        debug_assert_eq!(self.counts.len(), classifier.num_languages());
        debug_assert_eq!(self.extractor.spec(), classifier.spec());
        debug_assert_eq!(self.extractor.subsample(), classifier.subsample());
        let mut scratch = std::mem::take(&mut self.two_phase_scratch);
        scratch.clear();
        self.extractor.feed(chunk, &mut scratch);
        classifier.accumulate_ngrams(&scratch, &mut self.counts);
        self.two_phase_scratch = scratch;
    }

    /// Current standings (partial counts) without ending the document —
    /// what a host would see reading the counters mid-stream.
    pub fn standings(&self) -> ClassificationResult {
        ClassificationResult::new(self.counts.clone(), self.extractor.grams_emitted() as u64)
    }

    /// Bytes consumed so far in this document.
    pub fn bytes_seen(&self) -> usize {
        self.extractor.chars_seen()
    }

    /// End the document and return the final result (the End-of-Document
    /// latch). The session resets and can be reused for the next document.
    pub fn finish(&mut self) -> ClassificationResult {
        let fresh = vec![0u64; self.counts.len()];
        let result = ClassificationResult::new(
            std::mem::replace(&mut self.counts, fresh),
            self.extractor.grams_emitted() as u64,
        );
        self.extractor.reset();
        result
    }
}

/// A streaming classification session over one document, borrowing the
/// classifier for its lifetime. Thin wrapper over [`StreamingSession`].
#[derive(Clone, Debug)]
pub struct StreamingClassifier<'c> {
    classifier: &'c MultiLanguageClassifier,
    session: StreamingSession,
}

impl<'c> StreamingClassifier<'c> {
    /// Start a session against a programmed classifier.
    pub fn new(classifier: &'c MultiLanguageClassifier) -> Self {
        Self {
            classifier,
            session: StreamingSession::new(classifier),
        }
    }

    /// Feed the next chunk of the document (any size, including empty).
    pub fn feed(&mut self, chunk: &[u8]) {
        self.session.feed(self.classifier, chunk);
    }

    /// Current standings (partial counts) without ending the document.
    pub fn standings(&self) -> ClassificationResult {
        self.session.standings()
    }

    /// Bytes consumed so far in this document.
    pub fn bytes_seen(&self) -> usize {
        self.session.bytes_seen()
    }

    /// End the document and return the final result (the End-of-Document
    /// latch). The session resets and can be reused for the next document.
    pub fn finish(&mut self) -> ClassificationResult {
        self.session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ClassifierBuilder;
    use lc_bloom::BloomParams;
    use lc_corpus::{Corpus, CorpusConfig};
    use lc_ngram::NGramSpec;
    use proptest::prelude::*;

    fn classifier() -> &'static MultiLanguageClassifier {
        classifier_s(1)
    }

    /// Shared classifiers at sub-sampling factors 1..=4 (trained once,
    /// cloned with the knob turned).
    fn classifier_s(s: usize) -> &'static MultiLanguageClassifier {
        static BY_S: std::sync::OnceLock<Vec<MultiLanguageClassifier>> = std::sync::OnceLock::new();
        &BY_S.get_or_init(|| {
            let base = build_classifier();
            (1..=4)
                .map(|s| {
                    let mut c = base.clone();
                    c.set_subsampling(s);
                    c
                })
                .collect()
        })[s - 1]
    }

    fn build_classifier() -> MultiLanguageClassifier {
        let corpus = Corpus::generate(CorpusConfig::test_scale());
        let split = corpus.split();
        let mut b = ClassifierBuilder::new(NGramSpec::PAPER, 800);
        for &l in corpus.languages() {
            let docs: Vec<&[u8]> = split.train(l).map(|d| d.text.as_slice()).collect();
            b.add_language(l.code(), docs);
        }
        b.build_bloom(BloomParams::PAPER_CONSERVATIVE, 3)
    }

    #[test]
    fn chunked_equals_whole_buffer() {
        let c = classifier();
        let corpus = Corpus::generate(CorpusConfig::test_scale());
        let mut s = StreamingClassifier::new(c);
        for d in corpus.split().test_all().take(8) {
            for chunk in d.text.chunks(8) {
                s.feed(chunk);
            }
            assert_eq!(s.finish(), c.classify(&d.text));
        }
    }

    #[test]
    fn standings_are_monotone_and_final() {
        let c = classifier();
        let mut s = StreamingClassifier::new(c);
        let doc =
            b"the committee shall deliver its opinion on the draft measures within a time limit";
        let mut prev_total = 0u64;
        for chunk in doc.chunks(10) {
            s.feed(chunk);
            let st = s.standings();
            assert!(st.total_ngrams() >= prev_total);
            prev_total = st.total_ngrams();
        }
        let final_result = s.finish();
        assert_eq!(final_result, c.classify(doc));
    }

    #[test]
    fn session_reuse_is_clean() {
        let c = classifier();
        let mut s = StreamingClassifier::new(c);
        s.feed(b"le premier document francais avec quelques mots");
        let first = s.finish();
        s.feed(b"the second document in english with other words");
        let second = s.finish();
        assert_eq!(
            first,
            c.classify(b"le premier document francais avec quelques mots")
        );
        assert_eq!(
            second,
            c.classify(b"the second document in english with other words")
        );
    }

    #[test]
    fn empty_feeds_are_harmless() {
        let c = classifier();
        let mut s = StreamingClassifier::new(c);
        s.feed(b"");
        s.feed(b"abcdef");
        s.feed(b"");
        assert_eq!(s.finish(), c.classify(b"abcdef"));
    }

    /// The seed bug, pinned: a streaming session over a sub-sampled
    /// classifier must inherit the factor, so chunked output equals
    /// whole-buffer output — and the factor visibly thinned the stream.
    #[test]
    fn streaming_inherits_subsampling() {
        let doc: &[u8] = b"the committee shall deliver its opinion on the draft measures \
                           within a time limit which the chairman may lay down";
        let full = classifier().classify(doc);
        for s in [2usize, 3] {
            let c = classifier_s(s);
            assert_eq!(c.subsample(), s);
            let mut sess = StreamingClassifier::new(c);
            for chunk in doc.chunks(7) {
                sess.feed(chunk);
            }
            let streamed = sess.finish();
            assert_eq!(streamed, c.classify(doc), "s={s}");
            assert!(
                streamed.total_ngrams() <= full.total_ngrams() / s as u64 + 1,
                "s={s}: sub-sampling did not thin the stream \
                 ({} vs {} n-grams)",
                streamed.total_ngrams(),
                full.total_ngrams(),
            );
        }
    }

    proptest! {
        /// The fused feed and the two-phase reference feed are
        /// bit-identical for any chunking and sub-sampling factor.
        #[test]
        fn fused_feed_equals_two_phase_feed(
            doc in proptest::collection::vec(any::<u8>(), 0..400),
            cuts in proptest::collection::vec(0usize..400, 0..6),
            s in 1usize..=4,
        ) {
            let c = classifier_s(s);
            let mut cut_points: Vec<usize> =
                cuts.into_iter().map(|x| x % (doc.len() + 1)).collect();
            cut_points.push(0);
            cut_points.push(doc.len());
            cut_points.sort_unstable();
            cut_points.dedup();

            let mut fused = StreamingSession::new(c);
            let mut reference = StreamingSession::new(c);
            for w in cut_points.windows(2) {
                fused.feed(c, &doc[w[0]..w[1]]);
                reference.feed_two_phase(c, &doc[w[0]..w[1]]);
            }
            prop_assert_eq!(fused.finish(), reference.finish());
        }

        /// Chunked streaming equals whole-buffer classification for any
        /// chunking at every sub-sampling factor 1..=4, end to end through
        /// StreamingSession (not just the raw extractor).
        #[test]
        fn any_chunking_is_equivalent(
            doc in proptest::collection::vec(any::<u8>(), 0..400),
            cuts in proptest::collection::vec(0usize..400, 0..6),
            s in 1usize..=4,
        ) {
            let c = classifier_s(s);
            let mut cut_points: Vec<usize> =
                cuts.into_iter().map(|x| x % (doc.len() + 1)).collect();
            cut_points.push(0);
            cut_points.push(doc.len());
            cut_points.sort_unstable();
            cut_points.dedup();

            let mut sess = StreamingClassifier::new(c);
            for w in cut_points.windows(2) {
                sess.feed(&doc[w[0]..w[1]]);
            }
            prop_assert_eq!(sess.finish(), c.classify(&doc));
        }
    }
}
