//! Unicode (16-bit) multi-language classifier — the §3.3 extension wired
//! end-to-end.
//!
//! The narrow classifier's Bloom filters hash 20-bit packed 4-grams; here
//! the same filters hash 64-bit wide 4-grams. Per the paper, *"the rest of
//! the Bloom Filter remaining the same"* — identical parameters, identical
//! memory footprint, only the H3 matrix gets more rows (one per extra input
//! bit). Scripts beyond Latin (Greek, Cyrillic, CJK, …) become classifiable
//! without any per-script tables, which a direct-lookup design could never
//! afford (a 16-bit alphabet's 4-gram space has 2^64 slots).

use lc_bloom::{BloomParams, FilterBank, ParallelBloomFilter};
use lc_ngram::unicode::{WideExtractor, WideNGramSpec};
use lc_ngram::{NGram, NGramCounter, NGramProfile, NGramSpec};

use crate::result::ClassificationResult;

/// Build a wide (Unicode) top-`t` profile from training texts.
pub fn build_wide_profile<'a, I: IntoIterator<Item = &'a str>>(
    spec: WideNGramSpec,
    docs: I,
    t: usize,
) -> NGramProfile {
    // NGramCounter counts packed u64 keys; feed it pre-extracted wide grams.
    // The counter's own spec is only used for byte-level extraction, which
    // the wide path bypasses; record the window length for diagnostics.
    let mut counter = NGramCounter::new(NGramSpec::new(spec.n()));
    let extractor = WideExtractor::new(spec);
    let mut grams: Vec<NGram> = Vec::new();
    for d in docs {
        extractor.extract_into(d, &mut grams);
        counter.add_ngrams(&grams);
    }
    counter.top_t(t)
}

/// A Unicode-capable multi-language classifier over Parallel Bloom Filters
/// with 64-bit hash inputs.
#[derive(Clone, Debug)]
pub struct WideClassifier {
    names: Vec<String>,
    filters: Vec<ParallelBloomFilter>,
    bank: FilterBank,
    spec: WideNGramSpec,
    extractor: WideExtractor,
    params: BloomParams,
}

impl WideClassifier {
    /// Program one filter per named profile (profiles from
    /// [`build_wide_profile`]).
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn from_profiles(
        profiles: &[(String, NGramProfile)],
        spec: WideNGramSpec,
        params: BloomParams,
        seed: u64,
    ) -> Self {
        assert!(!profiles.is_empty(), "need at least one language profile");
        let mut names = Vec::with_capacity(profiles.len());
        let mut filters = Vec::with_capacity(profiles.len());
        for (name, p) in profiles {
            let mut f = ParallelBloomFilter::new(params, spec.bits(), seed);
            f.program_all(p.ngrams().map(|g| g.value()));
            names.push(name.clone());
            filters.push(f);
        }
        let bank = FilterBank::from_filters(&filters);
        Self {
            names,
            filters,
            bank,
            spec,
            extractor: WideExtractor::new(spec),
            params,
        }
    }

    /// Language names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of languages.
    pub fn num_languages(&self) -> usize {
        self.filters.len()
    }

    /// Bloom parameters (note: same RAM budget as the narrow classifier —
    /// the wide alphabet costs hash rows, not memory bits).
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Use sub-sampled extraction (test every `s`-th wide n-gram) — the
    /// same §3.3/§5.2 bandwidth knob as `MultiLanguageClassifier`, so the
    /// wide path has configuration parity with the narrow one.
    pub fn set_subsampling(&mut self, s: usize) {
        self.extractor = WideExtractor::with_subsampling(self.spec, s);
    }

    /// The sub-sampling factor in use (1 = every n-gram, the default).
    pub fn subsample(&self) -> usize {
        self.extractor.subsample()
    }

    /// Classify Unicode text (wide n-grams through the same bit-sliced bank
    /// as the narrow classifier — only the hash input width differs).
    pub fn classify(&self, text: &str) -> ClassificationResult {
        let mut grams = Vec::new();
        self.extractor.extract_into(text, &mut grams);
        let mut counts = vec![0u64; self.filters.len()];
        self.bank
            .accumulate_keys(grams.iter().map(|g| g.value()), &mut counts);
        ClassificationResult::new(counts, grams.len() as u64)
    }

    /// Name of the winning language.
    pub fn identify(&self, text: &str) -> &str {
        &self.names[self.classify(text).best()]
    }

    /// The wide n-gram shape.
    pub fn spec(&self) -> WideNGramSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GREEK: &str = "όλοι οι άνθρωποι γεννιούνται ελεύθεροι και ίσοι στην αξιοπρέπεια \
και τα δικαιώματα είναι προικισμένοι με λογική και συνείδηση και οφείλουν να συμπεριφέρονται \
μεταξύ τους με πνεύμα αδελφοσύνης το συμβούλιο της ευρωπαϊκής ένωσης εξέδωσε τον παρόντα \
κανονισμό ο παρών κανονισμός αρχίζει να ισχύει την εικοστή ημέρα από τη δημοσίευσή του";

    const RUSSIAN: &str = "все люди рождаются свободными и равными в своем достоинстве и \
правах они наделены разумом и совестью и должны поступать в отношении друг друга в духе \
братства совет европейского союза принял настоящий регламент настоящий регламент вступает в \
силу на двадцатый день после его опубликования в официальном журнале";

    const ENGLISH: &str = "all human beings are born free and equal in dignity and rights \
they are endowed with reason and conscience and should act towards one another in a spirit \
of brotherhood the council of the european union has adopted this regulation which shall \
enter into force on the twentieth day following that of its publication";

    fn classifier() -> WideClassifier {
        let spec = WideNGramSpec::PAPER_WIDE;
        let profiles = vec![
            ("el".to_string(), build_wide_profile(spec, [GREEK], 2000)),
            ("ru".to_string(), build_wide_profile(spec, [RUSSIAN], 2000)),
            ("en".to_string(), build_wide_profile(spec, [ENGLISH], 2000)),
        ];
        WideClassifier::from_profiles(&profiles, spec, BloomParams::PAPER_CONSERVATIVE, 17)
    }

    #[test]
    fn classifies_non_latin_scripts() {
        let c = classifier();
        assert_eq!(
            c.identify("οι άνθρωποι γεννιούνται ελεύθεροι και ίσοι"),
            "el"
        );
        assert_eq!(
            c.identify("люди рождаются свободными и равными в правах"),
            "ru"
        );
        assert_eq!(
            c.identify("human beings are born free and equal in rights"),
            "en"
        );
    }

    #[test]
    fn scripts_do_not_cross_match() {
        let c = classifier();
        let r = c.classify("все люди рождаются свободными и равными");
        // Greek and English counters should be essentially zero: distinct
        // 16-bit symbol ranges cannot collide except through Bloom FPs.
        let ru = r.counts()[1];
        assert!(ru > 0);
        assert!(
            r.counts()[0] < ru / 4,
            "Greek count suspiciously high: {:?}",
            r.counts()
        );
        assert!(
            r.counts()[2] < ru / 4,
            "English count suspiciously high: {:?}",
            r.counts()
        );
    }

    #[test]
    fn memory_footprint_identical_to_narrow() {
        // The §3.3 claim: only the hash width changes.
        let c = classifier();
        assert_eq!(
            c.params().total_bits(),
            BloomParams::PAPER_CONSERVATIVE.total_bits()
        );
        for f in &c.filters {
            assert_eq!(f.params(), BloomParams::PAPER_CONSERVATIVE);
        }
    }

    #[test]
    fn case_insensitive_across_scripts() {
        let c = classifier();
        let lower = c.classify("οι άνθρωποι γεννιούνται ελεύθεροι");
        let upper = c.classify("ΟΙ ΆΝΘΡΩΠΟΙ ΓΕΝΝΙΟΎΝΤΑΙ ΕΛΕΎΘΕΡΟΙ");
        // Greek final sigma and tonos normalization differ slightly under
        // simple uppercasing; decisions must still agree.
        assert_eq!(lower.best(), upper.best());
    }

    #[test]
    fn empty_text() {
        let c = classifier();
        let r = c.classify("");
        assert_eq!(r.total_ngrams(), 0);
    }

    #[test]
    fn wide_subsampling_thins_stream_and_keeps_decision() {
        let mut c = classifier();
        assert_eq!(c.subsample(), 1);
        let text = "все люди рождаются свободными и равными в правах";
        let full = c.classify(text);
        c.set_subsampling(2);
        assert_eq!(c.subsample(), 2);
        let half = c.classify(text);
        assert!(half.total_ngrams() <= full.total_ngrams() / 2 + 1);
        assert_eq!(full.best(), half.best());
    }
}
