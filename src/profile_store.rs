//! On-disk container for a set of named language profiles.
//!
//! The hardware flow programs profiles once and streams documents forever
//! (§5.4 amortization); persisting trained profiles makes that flow real for
//! the CLI: train once (`lcbloom train`), classify many times
//! (`lcbloom classify`). Format: magic `LCPS`, version, entry count, then
//! per entry a length-prefixed UTF-8 name and an `lc_ngram::NGramProfile`
//! binary blob.

use lc_core::LanguageProfile;
use lc_ngram::NGramProfile;
use std::io::{Error, ErrorKind, Read, Write};

const MAGIC: &[u8; 4] = b"LCPS";
const VERSION: u32 = 1;

/// A named set of trained profiles, ready to program into any classifier
/// family.
#[derive(Clone, Debug, Default)]
pub struct ProfileStore {
    profiles: Vec<LanguageProfile>,
}

impl ProfileStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from named profiles.
    pub fn from_profiles(profiles: Vec<LanguageProfile>) -> Self {
        Self { profiles }
    }

    /// Add a named profile.
    pub fn push(&mut self, name: impl Into<String>, profile: NGramProfile) {
        self.profiles.push(LanguageProfile {
            name: name.into(),
            profile,
        });
    }

    /// The stored profiles.
    pub fn profiles(&self) -> &[LanguageProfile] {
        &self.profiles
    }

    /// Number of languages.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Named `(name, profile)` pairs for the baseline constructors.
    pub fn named_pairs(&self) -> Vec<(String, NGramProfile)> {
        self.profiles
            .iter()
            .map(|p| (p.name.clone(), p.profile.clone()))
            .collect()
    }

    /// Serialize the store.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.profiles.len() as u32).to_le_bytes())?;
        for p in &self.profiles {
            let name = p.name.as_bytes();
            if name.len() > u16::MAX as usize {
                return Err(Error::new(
                    ErrorKind::InvalidInput,
                    "language name too long",
                ));
            }
            w.write_all(&(name.len() as u16).to_le_bytes())?;
            w.write_all(name)?;
            p.profile.write_to(w)?;
        }
        Ok(())
    }

    /// Deserialize a store written by [`Self::write_to`].
    pub fn read_from<R: Read>(r: &mut R) -> std::io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "bad profile-store magic",
            ));
        }
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        if u32::from_le_bytes(u32buf) != VERSION {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "unsupported store version",
            ));
        }
        r.read_exact(&mut u32buf)?;
        let count = u32::from_le_bytes(u32buf);
        if count > 100_000 {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "implausible language count",
            ));
        }
        let mut profiles = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let mut u16buf = [0u8; 2];
            r.read_exact(&mut u16buf)?;
            let name_len = u16::from_le_bytes(u16buf) as usize;
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name)
                .map_err(|_| Error::new(ErrorKind::InvalidData, "name not UTF-8"))?;
            let profile = NGramProfile::read_from(r)?;
            profiles.push(LanguageProfile { name, profile });
        }
        Ok(Self { profiles })
    }

    /// Save to a file path.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)
    }

    /// Load from a file path.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ngram::NGramSpec;

    fn sample_store() -> ProfileStore {
        let mut s = ProfileStore::new();
        s.push(
            "en",
            NGramProfile::build(
                NGramSpec::PAPER,
                [b"english text sample here".as_slice()],
                32,
            ),
        );
        s.push(
            "fr",
            NGramProfile::build(
                NGramSpec::PAPER,
                [b"exemple de texte francais".as_slice()],
                32,
            ),
        );
        s
    }

    #[test]
    fn roundtrip_through_bytes() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        let loaded = ProfileStore::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        for (a, b) in loaded.profiles().iter().zip(store.profiles()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.profile.entries(), b.profile.entries());
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let store = sample_store();
        let dir = std::env::temp_dir().join(format!("lcbloom-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profiles.lcp");
        store.save(&path).unwrap();
        let loaded = ProfileStore::load(&path).unwrap();
        assert_eq!(loaded.len(), store.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'Z';
        assert!(ProfileStore::read_from(&mut bad.as_slice()).is_err());
        let bad = &buf[..buf.len() / 2];
        assert!(ProfileStore::read_from(&mut &bad[..]).is_err());
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = ProfileStore::new();
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        let loaded = ProfileStore::read_from(&mut buf.as_slice()).unwrap();
        assert!(loaded.is_empty());
    }
}
