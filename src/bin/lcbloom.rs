//! `lcbloom` — command-line front end for the reproduction.
//!
//! ```text
//! lcbloom generate --out DIR [--docs N] [--bytes N] [--extended] [--seed S]
//! lcbloom train    --out FILE.lcp [--t N] DIR...
//! lcbloom classify --profiles FILE.lcp [--m KBITS] [--k K] FILE...
//! lcbloom simulate --profiles FILE.lcp [--async|--sync] FILE...
//! lcbloom serve    --profiles FILE.lcp [--addr A] [--workers N] [--reactors N]
//!                  [--max-connections N] [--max-channels N]
//!                  [--outbound-high-water BYTES] [--slow-consumer-ms N]
//!                  [--watchdog-ms N] [--stats-secs N] [--drain-deadline-ms N]
//!                  [--chaos-seed S] [--chaos-rate R]
//! lcbloom query    --addr A [--channels N] [--window W] [--timeout-ms N] FILE...
//! lcbloom demo
//! ```
//!
//! * `generate` writes a synthetic corpus to disk, one subdirectory per
//!   language code, `train/` and `test/` splits inside.
//! * `train` builds top-t 4-gram profiles from language-named directories
//!   (each containing text files) and saves them to a profile store.
//! * `classify` programs Bloom filters from a store and labels files
//!   (streamed in bounded chunks — constant memory; `-` reads stdin).
//! * `simulate` streams files through the XD1000 simulator and reports
//!   hardware-model throughput alongside the labels.
//! * `serve` runs the sharded TCP classification service on a profile
//!   store; `query` classifies files against a running server
//!   (`--channels N` multiplexes the batch over N wire-v2 channels on one
//!   connection, fanning it across the server's worker shards).
//! * `serve` drains gracefully on SIGTERM/SIGINT: accepts stop, new
//!   documents get `ShuttingDown` faults, in-flight documents finish
//!   (bounded by `--drain-deadline-ms`), and the final metrics snapshot
//!   prints on exit. `--chaos-rate`/`--chaos-seed` turn on deterministic
//!   fault injection for resilience drills.

use lcbloom::fpga::resources::ClassifierConfig;
use lcbloom::prelude::*;
use lcbloom::profile_store::ProfileStore;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("simd") => cmd_simd(&args[1..]),
        Some("demo") => cmd_demo(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try `lcbloom help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "lcbloom — n-gram language classification with (simulated) FPGA Bloom filters\n\
         \n\
         USAGE:\n\
         \x20 lcbloom generate --out DIR [--docs N] [--bytes N] [--extended] [--seed S]\n\
         \x20 lcbloom train    --out FILE.lcp [--t N] DIR...\n\
         \x20 lcbloom classify --profiles FILE.lcp [--m KBITS] [--k K]\n\
         \x20                  [--subsample S] [--timing] [--force-scalar] FILE...\n\
         \x20 lcbloom simulate --profiles FILE.lcp [--sync] FILE...\n\
         \x20 lcbloom serve    --profiles FILE.lcp [--addr HOST:PORT] [--workers N]\n\
         \x20                  [--reactors N] [--max-connections N] [--max-channels N]\n\
         \x20                  [--outbound-high-water BYTES] [--slow-consumer-ms N]\n\
         \x20                  [--watchdog-ms N] [--stats-secs N] [--stats-interval N]\n\
         \x20                  [--m KBITS] [--k K] [--subsample S] [--trace-ring]\n\
         \x20                  [--trace-sample N] [--trace-slow-us T]\n\
         \x20                  [--history-interval-ms N]\n\
         \x20                  [--drain-deadline-ms N] [--chaos-seed S] [--chaos-rate R]\n\
         \x20                  [--force-scalar]\n\
         \x20 lcbloom query    --addr HOST:PORT [--channels N] [--window W]\n\
         \x20                  [--timeout-ms N] [--timing] [--force-scalar] FILE...\n\
         \x20 lcbloom stats    --addr HOST:PORT [--watch SECS] [--ring]\n\
         \x20 lcbloom trace    --addr HOST:PORT [--follow] [--interval SECS]\n\
         \x20 lcbloom top      --addr HOST:PORT [--interval SECS] [--once]\n\
         \x20 lcbloom simd\n\
         \x20 lcbloom demo\n\
         \n\
         `train` expects one directory per language, named by its code (en, fr, ...),\n\
         each containing plain-text files. `classify` and `query` accept `-` for stdin.\n\
         `stats` asks a live server for its metrics snapshot over the wire (--watch\n\
         repeats every SECS, with server-side rates from the history ring; --ring\n\
         also dumps the --trace-ring flight recorders). `trace` drains the server's\n\
         sampled per-document spans (serve --trace-sample N / --trace-slow-us T) and\n\
         renders a stage waterfall per span; --follow polls until interrupted. `top`\n\
         renders sparkline rate tables from the server's history ring.\n\
         `--timing` prints p50/p95/p99 in the server's latency buckets; for `query`\n\
         the times come from server-side sampled spans, so the batch stays pipelined.\n\
         `simd` reports this host's CPU features and which probe path a classifier\n\
         built here would select. `--force-scalar` pins `classify`/`serve` to the\n\
         scalar path for live A/B; on `query` it instead *verifies* the remote\n\
         server is running scalar (the stats plane carries the server's path) and\n\
         fails fast when it is not. `LC_FORCE_SCALAR=1` does the same via the\n\
         environment."
    );
}

/// Minimal flag parser: returns (flags-with-values, positional args).
fn parse_flags(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<(std::collections::HashMap<String, String>, Vec<String>), String> {
    let mut flags = std::collections::HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if bool_flags.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
            } else if value_flags.contains(&name) {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.insert(name.to_string(), v.clone());
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    Ok((flags, positional))
}

fn parse_num<T: std::str::FromStr>(
    flags: &std::collections::HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{name}: {v}")),
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args, &["out", "docs", "bytes", "seed"], &["extended"])?;
    let out = PathBuf::from(flags.get("out").ok_or("generate requires --out DIR")?);
    let docs = parse_num(&flags, "docs", 40usize)?;
    let bytes = parse_num(&flags, "bytes", 4096usize)?;
    let seed = parse_num(&flags, "seed", 0x5EED_1CB1u64)?;
    let langs: &[Language] = if flags.contains_key("extended") {
        &Language::EXTENDED
    } else {
        &Language::ALL
    };

    let config = CorpusConfig {
        docs_per_language: docs,
        mean_doc_bytes: bytes,
        seed,
        ..CorpusConfig::default()
    };
    let corpus = Corpus::generate_for(langs, config);
    let split = corpus.split();
    let mut written = 0usize;
    for &lang in corpus.languages() {
        let groups: [(&str, Vec<&Document>); 2] = [
            ("train", split.train(lang).collect()),
            ("test", split.test(lang).collect()),
        ];
        for (sub, docs_vec) in groups {
            let dir = out.join(lang.code()).join(sub);
            std::fs::create_dir_all(&dir).map_err(|e| format!("creating {dir:?}: {e}"))?;
            for d in docs_vec {
                let path = dir.join(format!("doc{:05}.txt", d.index));
                std::fs::write(&path, &d.text).map_err(|e| format!("writing {path:?}: {e}"))?;
                written += 1;
            }
        }
    }
    println!(
        "wrote {written} documents ({:.1} MB) for {} languages under {}",
        corpus.total_bytes() as f64 / 1e6,
        corpus.languages().len(),
        out.display()
    );
    Ok(())
}

fn read_dir_texts(dir: &Path) -> Result<Vec<Vec<u8>>, String> {
    let mut texts = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = std::fs::read_dir(&d).map_err(|e| format!("reading {d:?}: {e}"))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                texts.push(std::fs::read(&path).map_err(|e| format!("reading {path:?}: {e}"))?);
            }
        }
    }
    texts.sort(); // deterministic training order
    Ok(texts)
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let (flags, dirs) = parse_flags(args, &["out", "t"], &[])?;
    let out = PathBuf::from(flags.get("out").ok_or("train requires --out FILE")?);
    let t = parse_num(&flags, "t", 5000usize)?;
    if dirs.is_empty() {
        return Err("train requires at least one language directory".into());
    }

    let mut store = ProfileStore::new();
    for dir in &dirs {
        let dir = PathBuf::from(dir);
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("cannot derive language name from {dir:?}"))?
            .to_string();
        // Prefer a train/ subdirectory when present (generate's layout).
        let train_dir = if dir.join("train").is_dir() {
            dir.join("train")
        } else {
            dir.clone()
        };
        let texts = read_dir_texts(&train_dir)?;
        if texts.is_empty() {
            return Err(format!("no training files under {train_dir:?}"));
        }
        let profile = NGramProfile::build(NGramSpec::PAPER, texts.iter().map(|t| t.as_slice()), t);
        println!(
            "{name}: {} files, {} profile n-grams",
            texts.len(),
            profile.len()
        );
        store.push(name, profile);
    }
    store
        .save(&out)
        .map_err(|e| format!("saving {out:?}: {e}"))?;
    println!(
        "saved {} language profiles to {}",
        store.len(),
        out.display()
    );
    Ok(())
}

fn load_classifier(
    flags: &std::collections::HashMap<String, String>,
) -> Result<(ProfileStore, MultiLanguageClassifier), String> {
    let path = PathBuf::from(
        flags
            .get("profiles")
            .ok_or("this command requires --profiles FILE")?,
    );
    let store = ProfileStore::load(&path).map_err(|e| format!("loading {path:?}: {e}"))?;
    if store.is_empty() {
        return Err("profile store is empty".into());
    }
    let m = parse_num(flags, "m", 16usize)?;
    let k = parse_num(flags, "k", 4usize)?;
    let s = parse_num(flags, "subsample", 1usize)?;
    if s == 0 {
        return Err("--subsample must be >= 1".into());
    }
    let params = BloomParams::from_kbits(m, k);
    let mut classifier =
        MultiLanguageClassifier::from_profiles(store.profiles(), NGramSpec::PAPER, params, 42);
    // Propagates everywhere: whole-buffer classify, chunked stdin
    // streaming, and every network session served from this classifier.
    classifier.set_subsampling(s);
    if flags.contains_key("force-scalar") {
        classifier.set_force_scalar(true);
    }
    Ok((store, classifier))
}

/// Chunk size for streaming classification: memory use stays constant no
/// matter how large the input is.
const CLASSIFY_CHUNK: usize = 64 * 1024;

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let (flags, files) = parse_flags(
        args,
        &["profiles", "m", "k", "subsample"],
        &["timing", "force-scalar"],
    )?;
    let (_, classifier) = load_classifier(&flags)?;
    if files.is_empty() {
        return Err("classify requires at least one file".into());
    }
    let timing = flags.contains_key("timing");
    let mut hist = [0u64; lcbloom::service::LATENCY_BUCKETS];
    println!(
        "{:<40} {:<8} {:>8} {:>10}",
        "file", "language", "margin", "n-grams"
    );
    let mut session = StreamingClassifier::new(&classifier);
    let mut buf = vec![0u8; CLASSIFY_CHUNK];
    for f in &files {
        let mut reader: Box<dyn std::io::Read> = if f == "-" {
            Box::new(std::io::stdin().lock())
        } else {
            Box::new(std::fs::File::open(f).map_err(|e| format!("reading {f}: {e}"))?)
        };
        let started = std::time::Instant::now();
        loop {
            let n = reader
                .read(&mut buf)
                .map_err(|e| format!("reading {f}: {e}"))?;
            if n == 0 {
                break;
            }
            session.feed(&buf[..n]);
        }
        let r = session.finish();
        hist[lcbloom::service::latency_bucket(started.elapsed())] += 1;
        println!(
            "{:<40} {:<8} {:>8.3} {:>10}",
            f,
            classifier.names()[r.best()],
            r.margin(),
            r.total_ngrams()
        );
    }
    if timing {
        print_timing(&hist);
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(
        args,
        &[
            "profiles",
            "m",
            "k",
            "subsample",
            "addr",
            "workers",
            "reactors",
            "max-connections",
            "max-channels",
            "outbound-high-water",
            "slow-consumer-ms",
            "watchdog-ms",
            "stats-secs",
            "stats-interval",
            "drain-deadline-ms",
            "chaos-seed",
            "chaos-rate",
            "trace-sample",
            "trace-slow-us",
            "history-interval-ms",
        ],
        &["trace-ring", "force-scalar"],
    )?;
    let (_, classifier) = load_classifier(&flags)?;
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:4004")
        .to_string();
    let defaults = ServiceConfig::default();
    let config = ServiceConfig {
        workers: parse_num(&flags, "workers", 0usize)?,
        reactors: parse_num(&flags, "reactors", 0usize)?,
        max_connections: parse_num(&flags, "max-connections", defaults.max_connections)?,
        max_channels: parse_num(&flags, "max-channels", defaults.max_channels)?,
        outbound_high_water: parse_num(
            &flags,
            "outbound-high-water",
            defaults.outbound_high_water,
        )?,
        slow_consumer_deadline: std::time::Duration::from_millis(parse_num(
            &flags,
            "slow-consumer-ms",
            defaults.slow_consumer_deadline.as_millis() as u64,
        )?),
        watchdog: std::time::Duration::from_millis(parse_num(&flags, "watchdog-ms", 5000u64)?),
        chaos: {
            // One knob sets a whole fault mix: --chaos-rate r injects
            // short reads/writes at r, lost wakes at r/2, payload
            // corruption and worker panics at r/10, connection resets at
            // r/100 — all on a schedule replayable from --chaos-seed.
            let rate: f64 = match flags.get("chaos-rate") {
                Some(s) => s
                    .parse()
                    .map_err(|e| format!("parsing --chaos-rate: {e}"))?,
                None => 0.0,
            };
            let seed = parse_num(&flags, "chaos-seed", 0xC4A0_5EEDu64)?;
            (rate > 0.0).then(|| lcbloom::service::ChaosConfig {
                seed,
                short_read: rate,
                short_write: rate,
                wake_drop: rate / 2.0,
                corrupt_payload: rate / 10.0,
                conn_reset: rate / 100.0,
                worker_panic: rate / 10.0,
                ..Default::default()
            })
        },
        trace_ring: flags.contains_key("trace-ring"),
        // --trace-sample N samples every Nth document's span (1 = all,
        // 0 = off); faults and --trace-slow-us stragglers are always
        // captured once any tracing (or chaos) is on.
        trace_sample: parse_num(&flags, "trace-sample", defaults.trace_sample)?,
        trace_slow_us: parse_num(&flags, "trace-slow-us", defaults.trace_slow_us)?,
        history_interval: std::time::Duration::from_millis(parse_num(
            &flags,
            "history-interval-ms",
            defaults.history_interval.as_millis() as u64,
        )?),
        ..defaults
    };
    // --stats-interval is the canonical name; --stats-secs kept as the
    // historical spelling.
    let stats_secs = parse_num(
        &flags,
        "stats-interval",
        parse_num(&flags, "stats-secs", 10u64)?,
    )?;
    let drain_deadline =
        std::time::Duration::from_millis(parse_num(&flags, "drain-deadline-ms", 5000u64)?);
    // Each connection costs two fds (stream + write-through dup); make the
    // process limit match the configured cap, best-effort.
    let _ = lcbloom::service::raise_nofile_limit(2 * config.max_connections as u64 + 64);
    let classifier = std::sync::Arc::new(classifier);
    let handle = lcbloom::service::serve(
        std::sync::Arc::clone(&classifier),
        addr.as_str(),
        config.clone(),
    )
    .map_err(|e| format!("binding {addr}: {e}"))?;
    let auto_or = |n: usize| {
        if n == 0 {
            "auto".to_string()
        } else {
            n.to_string()
        }
    };
    println!(
        "serving {} languages on {} ({} probe path, {} workers, {} reactors, \
         ≤{} connections, {} KiB outbound high-water, {:?} slow-consumer deadline, \
         {:?} watchdog)",
        classifier.num_languages(),
        handle.addr(),
        classifier.simd_level(),
        auto_or(config.workers),
        auto_or(config.reactors),
        config.max_connections,
        config.outbound_high_water / 1024,
        config.slow_consumer_deadline,
        config.watchdog,
    );
    // SIGTERM/SIGINT latch a flag instead of killing the process: the loop
    // below notices within 100ms, drains in-flight documents under the
    // deadline, prints the final snapshot, and exits 0.
    lcbloom::service::install_termination_handler()
        .map_err(|e| format!("installing termination handler: {e}"))?;
    let metrics = std::sync::Arc::clone(handle.metrics());
    let mut last_stats = std::time::Instant::now();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(100));
        if lcbloom::service::termination_requested() {
            eprintln!("termination signal; draining (deadline {drain_deadline:?})");
            let snapshot = handle.drain(drain_deadline);
            eprintln!("{snapshot}");
            return Ok(());
        }
        if last_stats.elapsed() >= std::time::Duration::from_secs(stats_secs.max(1)) {
            last_stats = std::time::Instant::now();
            eprintln!("{}", metrics.snapshot());
        }
    }
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (flags, files) = parse_flags(
        args,
        &["addr", "channels", "window", "timeout-ms"],
        &["timing", "force-scalar"],
    )?;
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:4004");
    let channels = parse_num(&flags, "channels", 1u16)?;
    if channels == 0 {
        return Err("--channels must be >= 1".into());
    }
    // --timing reads per-document times from server-side sampled spans, so
    // it rides the pipelined path at full speed instead of forcing
    // stop-and-wait round trips like a client-side stopwatch would.
    let timing = flags.contains_key("timing");
    let window = parse_num(&flags, "window", 4 * channels as usize)?;
    let timeout_ms = parse_num(&flags, "timeout-ms", 0u64)?;
    if files.is_empty() {
        return Err("query requires at least one file".into());
    }
    let mut client = if timeout_ms > 0 {
        let t = std::time::Duration::from_millis(timeout_ms);
        let policy = lcbloom::service::RetryPolicy {
            connect_timeout: Some(t),
            io_timeout: Some(t),
            ..Default::default()
        };
        ClassifyClient::connect_with(addr, &policy)
    } else {
        ClassifyClient::connect(addr)
    }
    .map_err(|e| format!("connecting {addr}: {e}"))?;
    // Classification runs server-side, so `--force-scalar` here cannot pin
    // a path — it *verifies* one: the server advertises its resolved probe
    // path on the stats plane, and a mismatch fails before any document is
    // sent (the live A/B guard deployments script against).
    if flags.contains_key("force-scalar") {
        let snap = client
            .stats(0)
            .map_err(|e| format!("fetching stats from {addr}: {e}"))?;
        match snap.simd.as_str() {
            "scalar" => {}
            "" => {
                return Err(format!(
                    "--force-scalar: server {addr} does not report its probe path \
                     (pre-simd build?)"
                ))
            }
            other => {
                return Err(format!(
                    "--force-scalar: server {addr} is serving the `{other}` path \
                     (restart it with `lcbloom serve --force-scalar`)"
                ))
            }
        }
    }
    println!(
        "{:<40} {:<8} {:>8} {:>10}",
        "file", "language", "margin", "n-grams"
    );
    let print_row = |f: &str, client: &ClassifyClient, served: &lcbloom::service::ServedResult| {
        let r = &served.result;
        println!(
            "{:<40} {:<8} {:>8.3} {:>10}",
            f,
            client.languages()[r.best()],
            r.margin(),
            r.total_ngrams()
        );
    };
    if channels > 1 || timing {
        // Multiplexed: all documents in memory, fanned over wire-v2
        // channels on this one connection so the server's whole worker
        // pool serves the batch.
        if timing {
            // Trace id 0 is divisible by every sample rate, so these
            // documents are sampled whenever the server traces at all.
            client.set_trace_context(Some(QUERY_TRACE_ID));
        }
        let texts: Vec<Vec<u8>> = files
            .iter()
            .map(|f| {
                if f == "-" {
                    let mut text = Vec::new();
                    std::io::stdin()
                        .lock()
                        .read_to_end(&mut text)
                        .map_err(|e| format!("reading stdin: {e}"))?;
                    Ok(text)
                } else {
                    std::fs::read(f).map_err(|e| format!("reading {f}: {e}"))
                }
            })
            .collect::<Result<_, String>>()?;
        let docs: Vec<&[u8]> = texts.iter().map(|t| t.as_slice()).collect();
        let served = client
            .classify_many_mux(&docs, channels, window)
            .map_err(|e| format!("classifying over {channels} channels: {e}"))?;
        for (f, s) in files.iter().zip(&served) {
            print_row(f, &client, s);
        }
        if timing {
            report_span_timing(&mut client)?;
        }
        return Ok(());
    }
    for f in &files {
        let served = if f == "-" {
            let mut text = Vec::new();
            std::io::stdin()
                .lock()
                .read_to_end(&mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
            client.classify(&text)
        } else {
            let mut file = std::fs::File::open(f).map_err(|e| format!("reading {f}: {e}"))?;
            let len = file
                .metadata()
                .map_err(|e| format!("reading {f}: {e}"))?
                .len();
            client.classify_reader(&mut file, len)
        }
        .map_err(|e| format!("classifying {f}: {e}"))?;
        print_row(f, &client, &served);
    }
    Ok(())
}

/// The trace id `query --timing` stamps on its documents: 0 is divisible
/// by every `--trace-sample` rate, so the batch is sampled whenever the
/// server traces at all, while the client-context flag plus this id let
/// the timing report pick exactly its own spans out of the drain.
const QUERY_TRACE_ID: u64 = 0;

/// Fetch the server's sampled spans and report this batch's times from
/// them: percentile bounds in the shared latency buckets plus mean stage
/// splits — all measured server-side, so pipelining cost the numbers
/// nothing.
fn report_span_timing(client: &mut ClassifyClient) -> Result<(), String> {
    let snap = client
        .stats(2)
        .map_err(|e| format!("fetching spans: {e}"))?;
    let spans: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| {
            s.flags & lcbloom::service::SPAN_CLIENT_CONTEXT != 0 && s.trace_id == QUERY_TRACE_ID
        })
        .collect();
    if spans.is_empty() {
        println!("timing: no sampled spans came back (is the server running with --trace-sample?)");
        return Ok(());
    }
    let mut hist = [0u64; lcbloom::service::LATENCY_BUCKETS];
    for s in &spans {
        hist[lcbloom::service::latency_bucket(std::time::Duration::from_micros(s.total_us))] += 1;
    }
    print_timing(&hist);
    let n = spans.len() as u64;
    let mean =
        |pick: fn(&&lcbloom::service::SpanRecord) -> u64| spans.iter().map(pick).sum::<u64>() / n;
    println!(
        "stages (server-side means): queue={}µs classify={}µs drain={}µs",
        mean(|s| s.queue_us),
        mean(|s| s.classify_us),
        mean(|s| s.drain_us)
    );
    Ok(())
}

/// Render a percentile bound from [`lcbloom::service::histogram_percentile_us`]
/// (`u64::MAX` is the overflow bucket).
fn fmt_bound_us(v: u64) -> String {
    if v == u64::MAX {
        format!(">{}", lcbloom::service::LATENCY_BOUNDS_US[7])
    } else {
        format!("≤{v}")
    }
}

/// Print client-side percentiles from a `--timing` histogram (the same
/// buckets the server's stage histograms use, so the numbers compare
/// bucket-for-bucket with `lcbloom stats`).
fn print_timing(hist: &[u64; lcbloom::service::LATENCY_BUCKETS]) {
    let n: u64 = hist.iter().sum();
    let p = |q: f64| {
        lcbloom::service::histogram_percentile_us(hist, q)
            .map(fmt_bound_us)
            .unwrap_or_else(|| "-".into())
    };
    println!(
        "timing: n={n} p50{} p95{} p99{} µs",
        p(0.50),
        p(0.95),
        p(0.99)
    );
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args, &["addr", "watch"], &["ring"])?;
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:4004");
    let watch = parse_num(&flags, "watch", 0u64)?;
    // --watch asks for detail 2 so each refresh carries the server's own
    // history ring: the rates printed are server-computed over measured
    // intervals, not client-side deltas between polls.
    let detail = if watch > 0 {
        2
    } else {
        u8::from(flags.contains_key("ring"))
    };
    // A dedicated connection: GetStats must not interleave with document
    // responses, and a fresh connection has none in flight by construction.
    let mut client =
        ClassifyClient::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    loop {
        let snap = client
            .stats(detail)
            .map_err(|e| format!("fetching stats from {addr}: {e}"))?;
        print_snapshot(&snap);
        if watch == 0 {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(watch.max(1)));
        println!();
    }
}

/// Print a wire-fetched snapshot: the compact one-line summary first, then
/// one greppable `key: value` line per aggregate and one line per shard /
/// stage / ring event (what the CI smoke steps and shell pipelines parse).
fn print_snapshot(snap: &lcbloom::service::MetricsSnapshot) {
    println!("{snap}");
    println!("documents: {}", snap.documents);
    if !snap.simd.is_empty() {
        println!("simd: {}", snap.simd);
    }
    let sum: u64 = snap.shards.iter().map(|s| s.docs).sum();
    println!("shard_docs_sum: {sum}");
    for (i, s) in snap.shards.iter().enumerate() {
        println!(
            "shard[{i}]: docs={} busy_ms={} depth={} peak={} parked={} jobs={}",
            s.docs,
            s.busy_ns / 1_000_000,
            s.queue_depth,
            s.queue_depth_peak,
            s.parked,
            s.jobs
        );
    }
    for (name, hist) in [
        ("latency", &snap.latency),
        ("queue-wait", &snap.queue_wait),
        ("classify", &snap.classify),
        ("response-drain", &snap.response_drain),
    ] {
        let p = |q: f64| {
            lcbloom::service::histogram_percentile_us(hist, q)
                .map(fmt_bound_us)
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "stage[{name}]: n={} p50{} p95{} p99{} µs",
            hist.iter().sum::<u64>(),
            p(0.50),
            p(0.95),
            p(0.99)
        );
    }
    println!(
        "reactor: wakeups={} eventfd={} reads={} writes={} short-read-continuations={}",
        snap.reactor_wakeups,
        snap.eventfd_wakes,
        snap.read_syscalls,
        snap.write_syscalls,
        snap.short_read_continuations
    );
    let wake_dist: Vec<String> = lcbloom::service::EVENTS_PER_WAKE_BOUNDS
        .iter()
        .map(|b| format!("≤{b}"))
        .chain(std::iter::once("over".into()))
        .zip(snap.events_per_wake.iter())
        .filter(|&(_, &n)| n > 0)
        .map(|(label, n)| format!("{label}:{n}"))
        .collect();
    if !wake_dist.is_empty() {
        println!("events-per-wake: {}", wake_dist.join(" "));
    }
    for (r, events) in snap.rings.iter().enumerate() {
        for ev in events {
            println!(
                "ring[{r}] +{:>12.6}s {} arg={}",
                ev.ts_ns as f64 / 1e9,
                lcbloom::service::RingTag::name(ev.tag),
                ev.arg
            );
        }
    }
    // Server-computed rates from the history ring (detail 2): the last few
    // slots, newest last, each a measured-interval delta.
    for slot in snap.history.iter().rev().take(5).rev() {
        println!("{}", history_line(slot));
    }
    if !snap.spans.is_empty() {
        println!(
            "spans: {} sampled span(s) drained (render with `lcbloom trace`)",
            snap.spans.len()
        );
    }
}

/// One greppable line per history slot: server-computed rates plus
/// per-shard busy fractions and queue depths.
fn history_line(slot: &lcbloom::service::HistorySlot) -> String {
    let busy: Vec<String> = (0..slot.shards.len())
        .map(|i| format!("{:.2}", slot.busy_frac(i)))
        .collect();
    let depth: Vec<String> = slot
        .shards
        .iter()
        .map(|s| s.queue_depth.to_string())
        .collect();
    format!(
        "history +{:>9.3}s: docs/s={:.1} mb/s={:.2} errors={} faults={} busy=[{}] depth=[{}]",
        slot.ts_ns as f64 / 1e9,
        slot.docs_per_s(),
        slot.mb_per_s(),
        slot.errors,
        slot.faults,
        busy.join(","),
        depth.join(",")
    )
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args, &["addr", "interval"], &["follow"])?;
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:4004");
    let follow = flags.contains_key("follow");
    let interval = parse_num(&flags, "interval", 1u64)?.max(1);
    let mut client =
        ClassifyClient::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    loop {
        // detail 2 *drains* the span buffers: each poll renders only what
        // arrived since the previous one, which is exactly what a follow
        // loop wants.
        let snap = client
            .stats(2)
            .map_err(|e| format!("fetching spans from {addr}: {e}"))?;
        if snap.spans.is_empty() && !follow {
            println!(
                "no sampled spans (server --trace-sample off, or none captured since the \
                 last drain)"
            );
            return Ok(());
        }
        for s in &snap.spans {
            print_span(s);
        }
        if !follow {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(interval));
    }
}

/// Compact letter form of a span's flag bits (greppable: `flags=SF`).
fn span_flags_str(flags: u8) -> String {
    let mut out = String::new();
    for (bit, ch) in [
        (lcbloom::service::SPAN_SAMPLED, 'S'),
        (lcbloom::service::SPAN_CLIENT_CONTEXT, 'C'),
        (lcbloom::service::SPAN_SLOW, 'L'),
        (lcbloom::service::SPAN_FAULT, 'F'),
        (lcbloom::service::SPAN_PARKED, 'P'),
    ] {
        if flags & bit != 0 {
            out.push(ch);
        }
    }
    if out.is_empty() {
        out.push('-');
    }
    out
}

/// One span: a greppable key=value line (what the CI smoke step parses)
/// followed by a stage waterfall scaled to the span's end-to-end time —
/// `░` queue wait, `█` classify, `▓` response drain.
fn print_span(s: &lcbloom::service::SpanRecord) {
    let shard = if s.shard == u16::MAX {
        "-".to_string()
    } else {
        s.shard.to_string()
    };
    println!(
        "span trace={:016x} conn={} ch={} seq={} shard={} bytes={} queue_us={} \
         classify_us={} drain_us={} total_us={} flags={} fault={}",
        s.trace_id,
        s.conn,
        s.channel,
        s.doc_seq,
        shard,
        s.doc_bytes,
        s.queue_us,
        s.classify_us,
        s.drain_us,
        s.total_us,
        span_flags_str(s.flags),
        lcbloom::service::fault_name(s.fault)
    );
    const WIDTH: u64 = 40;
    let total = s.total_us.max(1);
    // Stage cells floor-scaled (min 1 when the stage ran at all), then
    // capped left-to-right so the bar never overruns its WIDTH columns.
    let cells = |us: u64| {
        if us == 0 {
            0
        } else {
            (us * WIDTH / total).max(1)
        }
    };
    let mut left = WIDTH;
    let mut bar = String::new();
    for (us, ch) in [(s.queue_us, '░'), (s.classify_us, '█'), (s.drain_us, '▓')] {
        let n = cells(us).min(left);
        left -= n;
        bar.extend(std::iter::repeat_n(ch, n as usize));
    }
    bar.extend(std::iter::repeat_n(' ', left as usize));
    println!("  |{bar}| {}µs", s.total_us);
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args, &["addr", "interval"], &["once"])?;
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:4004");
    let once = flags.contains_key("once");
    let interval = parse_num(&flags, "interval", 2u64)?.max(1);
    let mut client =
        ClassifyClient::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    loop {
        let snap = client
            .stats(2)
            .map_err(|e| format!("fetching history from {addr}: {e}"))?;
        if !once {
            // Repaint in place like top(1).
            print!("\x1b[2J\x1b[H");
        }
        // The newest 60 slots fit a terminal row; the ring holds 120.
        let h = &snap.history[snap.history.len().saturating_sub(60)..];
        println!(
            "lcbloom top — {addr} — {} history slot(s), newest right",
            h.len()
        );
        match h.last() {
            None => println!("(no history yet; the server samples every --history-interval-ms)"),
            Some(last) => {
                let docs: Vec<f64> = h.iter().map(|s| s.docs_per_s()).collect();
                let mbs: Vec<f64> = h.iter().map(|s| s.mb_per_s()).collect();
                let fmax = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
                println!(
                    "{:<8} {}  now {:>8.1}  max {:>8.1}",
                    "docs/s",
                    sparkline(&docs),
                    last.docs_per_s(),
                    fmax(&docs)
                );
                println!(
                    "{:<8} {}  now {:>8.2}  max {:>8.2}",
                    "MB/s",
                    sparkline(&mbs),
                    last.mb_per_s(),
                    fmax(&mbs)
                );
                for i in 0..last.shards.len() {
                    let busy: Vec<f64> = h.iter().map(|s| s.busy_frac(i)).collect();
                    println!(
                        "shard[{i}]  {}  busy {:>5.2}  depth {}",
                        sparkline(&busy),
                        last.busy_frac(i),
                        last.shards[i].queue_depth
                    );
                }
            }
        }
        if once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(interval));
    }
}

/// Unicode block-element sparkline, scaled to the series' own maximum.
fn sparkline(vals: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = vals.iter().cloned().fold(0.0f64, f64::max);
    vals.iter()
        .map(|&v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                BARS[((v / max * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let (flags, files) = parse_flags(args, &["profiles", "m", "k", "subsample"], &["sync"])?;
    let (store, classifier) = load_classifier(&flags)?;
    if files.is_empty() {
        return Err("simulate requires at least one file".into());
    }
    let texts: Vec<Vec<u8>> = files
        .iter()
        .map(|f| std::fs::read(f).map_err(|e| format!("reading {f}: {e}")))
        .collect::<Result<_, _>>()?;
    let docs: Vec<&[u8]> = texts.iter().map(|t| t.as_slice()).collect();

    let config = ClassifierConfig {
        bloom: classifier.params(),
        languages: store.len(),
        copies: 4,
    };
    let hw = HardwareClassifier::place(classifier, config).with_clock_mhz(194.0);
    let mut sys = Xd1000::new(hw);
    let protocol = if flags.contains_key("sync") {
        HostProtocol::Synchronous
    } else {
        HostProtocol::Asynchronous
    };
    let report = sys.run(&docs, protocol);

    for (f, r) in files.iter().zip(&report.results) {
        println!(
            "{:<40} {}",
            f,
            sys.hardware().classifier().names()[r.best()]
        );
    }
    println!(
        "\n{} documents, {:.2} MB in {:.2} ms simulated ({:?}): {:.0} MB/s",
        report.documents,
        report.total_bytes as f64 / 1e6,
        report.sim_time.as_secs_f64() * 1e3,
        protocol,
        report.throughput_mb_s()
    );
    Ok(())
}

/// Report the host's vector capability and which probe path a classifier
/// built in this process would select — what CI logs so a silent fallback
/// to scalar (new runner, changed env) is visible in the job output.
fn cmd_simd(args: &[String]) -> Result<(), String> {
    let (_, _) = parse_flags(args, &[], &[])?;
    let cpu = SimdLevel::cpu_has_avx2();
    let forced = SimdLevel::force_scalar_requested();
    let selected = SimdLevel::detect();
    println!("cpu avx2: {}", if cpu { "yes" } else { "no" });
    println!("LC_FORCE_SCALAR: {}", if forced { "set" } else { "unset" });
    println!("selected: {selected}");
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    println!("training on a synthetic 10-language corpus...");
    let corpus = Corpus::generate(CorpusConfig::default());
    let classifier =
        lcbloom::train_bloom_classifier(&corpus, 5000, BloomParams::PAPER_CONSERVATIVE, 42);
    let mut correct = 0usize;
    let mut total = 0usize;
    for d in corpus.split().test_all() {
        total += 1;
        correct += usize::from(classifier.classify(&d.text).best() == d.language.index());
    }
    println!(
        "accuracy on {} held-out documents: {:.2}%",
        total,
        correct as f64 / total as f64 * 100.0
    );
    for (&lang, sample) in Language::ALL.iter().zip([
        "tous les êtres humains naissent libres",
        "all human beings are born free and equal",
    ]) {
        let _ = lang;
        let latin1 = lcbloom::corpus::translit::to_latin1(sample);
        println!("  \"{sample}\" -> {}", classifier.identify(&latin1));
    }
    Ok(())
}
