//! # lcbloom — Language Classification using N-grams Accelerated by
//! FPGA-based Bloom Filters
//!
//! A Rust reproduction of Jacob & Gokhale (HPRCTA'07): an end-to-end n-gram
//! language classifier whose membership tests run in Parallel Bloom Filters,
//! together with a simulator of the XtremeData XD1000 platform the paper
//! deployed on, the HAIL and Mguesser baselines it compares against, and a
//! benchmark harness that regenerates every table and figure of the paper's
//! evaluation.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`hash`] | `lc-hash` | H3 hardware hash family |
//! | [`ngram`] | `lc-ngram` | alphabet folding, n-gram extraction, profiles |
//! | [`bloom`] | `lc-bloom` | classic + Parallel Bloom Filters, FP analytics |
//! | [`corpus`] | `lc-corpus` | synthetic JRC-Acquis stand-in corpus |
//! | [`core`] | `lc-core` | multi-language classifier, evaluation harness |
//! | [`fpga`] | `lc-fpga` | XD1000 simulator: resources, link, protocol |
//! | [`hail`] | `lc-hail` | HAIL baseline (direct lookup in off-chip SRAM) |
//! | [`mguesser`] | `lc-mguesser` | Cavnar–Trenkle software baseline |
//!
//! ## Quickstart
//!
//! ```
//! use lcbloom::prelude::*;
//!
//! // Generate a small synthetic multilingual corpus (10 languages).
//! let corpus = Corpus::generate(CorpusConfig::test_scale());
//!
//! // Train the paper's classifier: 4-grams, top-t profiles, Bloom
//! // filters with k = 4 hash functions over 16 Kbit vectors.
//! let classifier = lcbloom::train_bloom_classifier(
//!     &corpus,
//!     1000,                              // profile size (paper: 5000)
//!     BloomParams::PAPER_CONSERVATIVE,   // (m, k) = (16 Kbit, 4)
//!     42,                                // hash seed
//! );
//!
//! // Classify a test document.
//! let doc = corpus.split().test(Language::French).next().unwrap();
//! assert_eq!(classifier.identify(&doc.text), "fr");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lc_bloom as bloom;
pub use lc_core as core;
pub use lc_corpus as corpus;
pub use lc_fpga as fpga;
pub use lc_hail as hail;
pub use lc_hash as hash;
pub use lc_mguesser as mguesser;
pub use lc_ngram as ngram;
pub use lc_service as service;
pub use lc_wire as wire;

pub mod profile_store;

/// Commonly used types in one import.
pub mod prelude {
    pub use lc_bloom::{BloomParams, ClassicBloomFilter, ParallelBloomFilter};
    pub use lc_core::{
        classify_batch, ClassificationResult, ClassifierBuilder, ConfusionMatrix, ExactClassifier,
        MultiLanguageClassifier, ParallelClassifier, StreamingClassifier, StreamingSession,
    };
    pub use lc_corpus::{Corpus, CorpusConfig, Document, Language};
    pub use lc_fpga::{
        ClassifierConfig, HardwareClassifier, HostProtocol, LinkModel, Xd1000, EP2S180,
    };
    pub use lc_hail::{HailClassifier, SramModel, XCV2000E_SRAM};
    pub use lc_hash::{H3Family, HashFunction, SimdLevel, H3};
    pub use lc_mguesser::{CavnarTrenkle, HashSetClassifier};
    pub use lc_ngram::{NGram, NGramExtractor, NGramProfile, NGramSpec};
    pub use lc_service::{ClassifyClient, ServedResult, ServiceConfig};
}

use lc_bloom::BloomParams;
use lc_core::{ClassifierBuilder, ExactClassifier, MultiLanguageClassifier};
use lc_corpus::Corpus;
use lc_ngram::{NGramProfile, NGramSpec};

/// Train the paper's Bloom-filter classifier on a corpus' training split.
///
/// Convenience wrapper over [`lc_core::ClassifierBuilder`]: one language per
/// corpus language, 4-gram profiles of size `t`, all filters seeded from
/// `seed`.
pub fn train_bloom_classifier(
    corpus: &Corpus,
    t: usize,
    params: BloomParams,
    seed: u64,
) -> MultiLanguageClassifier {
    builder_for(corpus, t).build_bloom(params, seed)
}

/// Train the exact (direct-lookup) classifier on the same split — the
/// false-positive-free reference.
pub fn train_exact_classifier(corpus: &Corpus, t: usize) -> ExactClassifier {
    builder_for(corpus, t).build_exact()
}

/// Train named profiles for the baselines (`lc-hail`, `lc-mguesser`).
pub fn train_profiles(corpus: &Corpus, t: usize) -> Vec<(String, NGramProfile)> {
    let split = corpus.split();
    corpus
        .languages()
        .iter()
        .map(|&l| {
            let docs: Vec<&[u8]> = split.train(l).map(|d| d.text.as_slice()).collect();
            (
                l.code().to_string(),
                NGramProfile::build(NGramSpec::PAPER, docs, t),
            )
        })
        .collect()
}

fn builder_for(corpus: &Corpus, t: usize) -> ClassifierBuilder {
    let split = corpus.split();
    let mut b = ClassifierBuilder::new(NGramSpec::PAPER, t);
    for &l in corpus.languages() {
        let docs: Vec<&[u8]> = split.train(l).map(|d| d.text.as_slice()).collect();
        b.add_language(l.code(), docs);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_corpus::CorpusConfig;

    #[test]
    fn helpers_train_consistent_classifiers() {
        let corpus = Corpus::generate(CorpusConfig::test_scale());
        let bloom = train_bloom_classifier(&corpus, 500, BloomParams::PAPER_CONSERVATIVE, 1);
        let exact = train_exact_classifier(&corpus, 500);
        let profiles = train_profiles(&corpus, 500);
        assert_eq!(bloom.num_languages(), 10);
        assert_eq!(exact.num_languages(), 10);
        assert_eq!(profiles.len(), 10);
        assert_eq!(bloom.names(), exact.names());
    }
}
